package wirecodec

import "repro/internal/kga"

// kga.Message crosses two independent wire formats — the daemon security
// envelope (internal/spread secMsg) and the secure layer envelope
// (internal/core) — so its field encoding lives here, next to the
// primitives, rather than being duplicated in both.

// AppendKGAMessage appends a kga.Message's fields (presence byte first, so
// nil pointers survive round trips).
func AppendKGAMessage(b []byte, m *kga.Message) []byte {
	if m == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = AppendString(b, m.Proto)
	b = AppendInt(b, int64(m.Type))
	b = AppendString(b, m.From)
	b = AppendString(b, m.To)
	return AppendBytes(b, m.Body)
}

// KGAMessage reads a kga.Message encoded by AppendKGAMessage, or nil. The
// Body retains its backing storage out of the decoder input.
func (d *Dec) KGAMessage() *kga.Message {
	if !d.Bool() {
		return nil
	}
	m := &kga.Message{}
	m.Proto = d.String()
	m.Type = int(d.Int())
	m.From = d.String()
	m.To = d.String()
	m.Body = d.Bytes()
	if d.err != nil {
		return nil
	}
	return m
}
