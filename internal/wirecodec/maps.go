package wirecodec

import (
	"math/big"
	"sort"
)

// String-keyed map encodings, used by the key-agreement message bodies
// (cliques, ckd). Keys travel sorted so encoding is deterministic — gob's
// random map order was the reason those protocols MAC canonical forms
// rather than encodings, and the codec keeps that property anyway.

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AppendBigIntMap appends a nil-preserving map[string]*big.Int.
func AppendBigIntMap(b []byte, m map[string]*big.Int) []byte {
	if m == nil {
		return AppendUvarint(b, 0)
	}
	b = AppendUvarint(b, uint64(len(m))+1)
	for _, k := range sortedKeys(m) {
		b = AppendString(b, k)
		b = AppendBigInt(b, m[k])
	}
	return b
}

// BigIntMap reads a map written by AppendBigIntMap.
func (d *Dec) BigIntMap() map[string]*big.Int {
	n, present := d.Count()
	if !present {
		return nil
	}
	m := make(map[string]*big.Int, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.String()
		m[k] = d.BigInt()
	}
	return m
}

// AppendBytesMap appends a nil-preserving map[string][]byte.
func AppendBytesMap(b []byte, m map[string][]byte) []byte {
	if m == nil {
		return AppendUvarint(b, 0)
	}
	b = AppendUvarint(b, uint64(len(m))+1)
	for _, k := range sortedKeys(m) {
		b = AppendString(b, k)
		b = AppendBytes(b, m[k])
	}
	return b
}

// BytesMap reads a map written by AppendBytesMap.
func (d *Dec) BytesMap() map[string][]byte {
	n, present := d.Count()
	if !present {
		return nil
	}
	m := make(map[string][]byte, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.String()
		m[k] = d.Bytes()
	}
	return m
}
