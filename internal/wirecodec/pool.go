package wirecodec

import "sync"

// Encode buffers are recycled through a sync.Pool: the steady-state data
// plane encodes a frame, hands it to the transport (which copies), and can
// reuse the buffer immediately. Oversized buffers — a 100 KB payload or a
// recovery union — are dropped instead of pooled so a burst of large frames
// does not pin their memory behind the pool forever.

// maxPooledBuf caps the capacity of buffers returned to the pool.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// GetBuf returns a zero-length encode buffer from the pool. Pair with
// PutBuf once the encoded bytes are no longer referenced.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf recycles an encode buffer. The caller must not touch b (or any
// encoding appended into it) afterwards. Buffers that grew beyond
// maxPooledBuf are released to the garbage collector instead.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
