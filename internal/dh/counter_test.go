package dh

import (
	"sync"
	"testing"
)

// TestCounterConcurrentSnapshot hammers a single Counter from many
// goroutines — incrementing, snapshotting, and reading totals concurrently
// — and then checks the exact tally. Run under -race this is the
// regression test for the goroutine-safety the ExpBatch worker pool
// depends on: one Inc per exponentiation must survive arbitrary
// interleaving.
func TestCounterConcurrentSnapshot(t *testing.T) {
	const (
		writers = 8
		perW    = 500
	)
	labels := []string{OpKeyEncrypt, OpShareUpdate, OpSessionKey}
	c := NewCounter()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc(labels[(w+i)%len(labels)])
			}
		}()
	}
	// Concurrent readers: results are transient but must be internally
	// consistent and race-free.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Snapshot()
				sum := 0
				for _, v := range snap {
					sum += v
				}
				if sum > c.Total() {
					// Snapshot was taken before Total: the sum can
					// only trail the live total, never exceed it.
					t.Error("snapshot sum exceeds later total")
					return
				}
				_ = c.Get(labels[0])
				_ = c.Labels()
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got, want := c.Total(), writers*perW; got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
	sum := 0
	for _, l := range labels {
		sum += c.Get(l)
	}
	if sum != writers*perW {
		t.Fatalf("label sum = %d, want %d", sum, writers*perW)
	}
}
