// Package dh implements the Diffie-Hellman group arithmetic that underlies
// both key-agreement protocols in the paper (Cliques group Diffie-Hellman and
// the centralized CKD protocol of Appendix A).
//
// The package works in the prime-order subgroup of Z_p* for a safe prime
// p = 2q + 1. Private shares are exponents in [2, q-1]; public values are
// subgroup elements. All modular exponentiations can be routed through a
// Counter so that the exponentiation accounting of the paper's Tables 2-4 can
// be regenerated from the implementation rather than re-derived on paper.
package dh

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Predefined safe-prime groups. Group512 matches the modulus size used in the
// paper's experiments (OpenSSL DH with a 512-bit modulus); the larger groups
// exist for the modulus-size ablation.
var (
	// Group512 is a 512-bit safe-prime group.
	Group512 = mustGroup(512,
		"c53305848a192f94d11818af143671291068586b0b4c3f299f9b964e4f99d04b441b093bfedee80c68baf3aa810611338bde74399cf9fc5ee3c8ec2516fcb897")

	// Group768 is a 768-bit safe-prime group.
	Group768 = mustGroup(768,
		"f1c6a7cf9df039697a3a11fa5b907671a4228bdfc87e913b4a874d7d6fb39475f7699111baccf08ab99e9ebc8d43a496294585e58b76474150a10a64dceab98544b0f433b67a2d8833c70d5be9ebb95603c1e10359a14c291aa1f62feb9b4e23")

	// Group2048 is a 2048-bit safe-prime group. On 2026 hardware its
	// exponentiation cost (~2.5 ms) matches the paper's 512-bit cost on
	// the 1999 Pentium testbed, so it calibrates timing reproductions.
	Group2048 = mustGroup(2048,
		"f7750e35bbccaf30e06ca6068dd4a76540d84fb45b2c47c37264ab0d256c46071f1c598b3289ed389077964521ad3687b2f88ab7941c475214cce45153294672da64381996a2749e674718a29c28d7de35363fad20f9626b102a5ccf5ab17fa75aa751dae58826559f97afcd61e7f8f6725e46dd1669b2a9124a08a15398161ceb32ccc5399927795c4fc0e53ed8f4dd9d5906b3c5d0f497cfbfb042f70bec301490bac696f012c97b43e7d7011e0f54efe8f87bd0255ce50ec38053828002b12cdbd8b8c868b30cd7774d4d8c7dc7dc5da130422b34495367a1cab1694f91e47949521fa39921fbc304132945518e3325f5d8fdcb4bdd963841f981258eaba3")

	// Group1024 is a 1024-bit safe-prime group.
	Group1024 = mustGroup(1024,
		"f9f7a4d62b03579b42966a7a0d64d3211557b6dde5dc9594cb35e96b8cfb897e795b0f26c55db61316bfaa9aaa8e3c5ef30b9078c189ff873fa54d8af3ff68bf0e2fd4d02d071a08f51abb18494f35c0188c141cbcda20812eef06f39fd80f9ef86fa74e0f975cedf2412a289ed4e53519292e9368cd077c76338e255510341b")
)

// Errors returned by group operations.
var (
	ErrNotInGroup    = errors.New("dh: value is not an element of the prime-order subgroup")
	ErrBadShare      = errors.New("dh: private share out of range")
	ErrNotInvertible = errors.New("dh: exponent is not invertible modulo the group order")
)

// Group describes a safe-prime Diffie-Hellman group: p = 2q + 1 with p, q
// prime, and a generator G of the order-q subgroup of Z_p*.
type Group struct {
	// P is the safe-prime modulus.
	P *big.Int
	// Q is the subgroup order, (P-1)/2.
	Q *big.Int
	// G generates the order-Q subgroup.
	G *big.Int
	// Bits is the size of P in bits.
	Bits int
}

func mustGroup(bits int, pHex string) *Group {
	p, ok := new(big.Int).SetString(pHex, 16)
	if !ok {
		panic(fmt.Sprintf("dh: bad embedded prime for %d-bit group", bits))
	}
	q := new(big.Int).Rsh(p, 1) // (p-1)/2
	// 4 = 2^2 is a quadratic residue mod any safe prime, and any
	// non-identity quadratic residue generates the full order-q subgroup.
	g := big.NewInt(4)
	return &Group{P: p, Q: q, G: g, Bits: bits}
}

// GroupForBits returns the predefined group with the given modulus size.
func GroupForBits(bits int) (*Group, error) {
	switch bits {
	case 512:
		return Group512, nil
	case 768:
		return Group768, nil
	case 1024:
		return Group1024, nil
	case 2048:
		return Group2048, nil
	default:
		return nil, fmt.Errorf("dh: no predefined %d-bit group", bits)
	}
}

// Exp computes base^exp mod p, recording one exponentiation against the
// counter under the given label. A nil counter skips instrumentation.
func (g *Group) Exp(base, exp *big.Int, c *Counter, label string) *big.Int {
	if c != nil {
		c.Inc(label)
	}
	return new(big.Int).Exp(base, exp, g.P)
}

// PowG computes G^exp mod p with counting. It runs on the group's cached
// fixed-base comb table (built lazily on first use, see FixedBase): the
// result is bit-identical to Exp(g.G, exp, ...) at a fraction of the cost,
// and it still counts as exactly one exponentiation — the optimization
// never changes the paper's Table 2-4 accounting.
func (g *Group) PowG(exp *big.Int, c *Counter, label string) *big.Int {
	if c != nil {
		c.Inc(label)
	}
	return g.fixedBase().Exp(exp)
}

// Mul computes a*b mod p (not counted: multiplication cost is negligible next
// to exponentiation, and the paper's tables count exponentiations only).
func (g *Group) Mul(a, b *big.Int) *big.Int {
	v := new(big.Int).Mul(a, b)
	return v.Mod(v, g.P)
}

// NewShare draws a uniform private share in [2, q-1] from r.
func (g *Group) NewShare(r io.Reader) (*big.Int, error) {
	max := new(big.Int).Sub(g.Q, big.NewInt(2)) // size of [2, q-1]
	for {
		v, err := rand.Int(r, max)
		if err != nil {
			return nil, fmt.Errorf("draw share: %w", err)
		}
		v.Add(v, big.NewInt(2))
		// A share must be invertible mod q for the factor-out steps of
		// Cliques MERGE and for CKD blinding removal. q is prime, so
		// everything in [2, q-1] is invertible; the check is kept for
		// safety against future non-prime-order groups.
		if new(big.Int).GCD(nil, nil, v, g.Q).Cmp(big.NewInt(1)) == 0 {
			return v, nil
		}
	}
}

// MustShare draws a share from crypto/rand and panics on failure. Intended
// for tests and benchmarks only.
func (g *Group) MustShare() *big.Int {
	s, err := g.NewShare(rand.Reader)
	if err != nil {
		panic(err)
	}
	return s
}

// InverseQ returns exp^-1 mod q, used to factor a private share out of a
// partial key (Cliques MERGE step 4) and to strip CKD blinding.
func (g *Group) InverseQ(exp *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(exp, g.Q)
	if inv == nil {
		return nil, ErrNotInvertible
	}
	return inv, nil
}

// ReduceQ maps a group element to an exponent by reducing it modulo q. CKD
// uses subgroup elements as blinding exponents (Ks^(alpha^(r1*ri))); reducing
// mod q keeps exponent arithmetic in Z_q where inverses exist.
func (g *Group) ReduceQ(v *big.Int) *big.Int {
	return new(big.Int).Mod(v, g.Q)
}

// CheckElement verifies that v is a non-identity element of the order-q
// subgroup: 1 < v < p and v is a quadratic residue mod p. For a safe prime
// p = 2q+1 the order-q subgroup is exactly the set of quadratic residues,
// so the Jacobi symbol decides membership without a modular exponentiation
// — important because key-agreement modules validate every received value,
// and an exponentiation here would silently distort the paper's Tables 2-4
// accounting and the Figure 4 CPU profile.
func (g *Group) CheckElement(v *big.Int) error {
	if v == nil || v.Cmp(big.NewInt(1)) <= 0 || v.Cmp(g.P) >= 0 {
		return ErrNotInGroup
	}
	if big.Jacobi(v, g.P) != 1 {
		return ErrNotInGroup
	}
	return nil
}

// CheckShare verifies that s is a usable private share: 1 < s < q.
func (g *Group) CheckShare(s *big.Int) error {
	if s == nil || s.Cmp(big.NewInt(1)) <= 0 || s.Cmp(g.Q) >= 0 {
		return ErrBadShare
	}
	return nil
}
