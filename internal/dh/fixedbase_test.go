package dh

import (
	"math/big"
	"testing"
)

func TestFixedBaseMatchesGenericExp(t *testing.T) {
	for _, g := range []*Group{Group512, Group1024} {
		fb := g.fixedBase()
		exps := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			big.NewInt(2),
			new(big.Int).Sub(g.Q, big.NewInt(1)),
			new(big.Int).Set(g.Q),
		}
		for i := 0; i < 32; i++ {
			exps = append(exps, g.MustShare())
		}
		for _, e := range exps {
			want := new(big.Int).Exp(g.G, e, g.P)
			if got := fb.Exp(e); got.Cmp(want) != 0 {
				t.Fatalf("bits=%d e=%v: fixed-base %v != generic %v", g.Bits, e, got, want)
			}
		}
	}
}

func TestFixedBaseFallback(t *testing.T) {
	g := Group512
	fb := g.fixedBase()
	// Wider than the table capacity: must fall back to the generic path
	// and still be exact.
	wide := new(big.Int).Lsh(big.NewInt(1), uint(g.Q.BitLen())+13)
	wide.Add(wide, big.NewInt(5))
	if got, want := fb.Exp(wide), new(big.Int).Exp(g.G, wide, g.P); got.Cmp(want) != 0 {
		t.Fatalf("wide exponent: fixed-base %v != generic %v", got, want)
	}
	neg := big.NewInt(-3)
	if got, want := fb.Exp(neg), new(big.Int).Exp(g.G, neg, g.P); got.Cmp(want) != 0 {
		t.Fatalf("negative exponent: fixed-base %v != generic %v", got, want)
	}
}

func TestFixedBaseArbitraryBase(t *testing.T) {
	g := Group512
	base := g.PowG(g.MustShare(), nil, "")
	fb := NewFixedBase(g, base, 0)
	for i := 0; i < 8; i++ {
		e := g.MustShare()
		want := new(big.Int).Exp(base, e, g.P)
		if got := fb.Exp(e); got.Cmp(want) != 0 {
			t.Fatalf("arbitrary base: fixed-base != generic for e=%v", e)
		}
	}
}

func TestPowGUsesFixedBaseAndCounts(t *testing.T) {
	g := Group512
	c := NewCounter()
	e := g.MustShare()
	got := g.PowG(e, c, OpSessionKey)
	if want := new(big.Int).Exp(g.G, e, g.P); got.Cmp(want) != 0 {
		t.Fatalf("PowG = %v, want %v", got, want)
	}
	if c.Get(OpSessionKey) != 1 || c.Total() != 1 {
		t.Fatalf("PowG counted %d/%d, want exactly one", c.Get(OpSessionKey), c.Total())
	}
}
