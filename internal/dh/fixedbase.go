package dh

import (
	"math/big"
	"sync"
)

// fixedBaseWindow is the comb window width in bits. Seven keeps the table
// around (q_bits/7)·128 entries — ~600 KB for the 512-bit group, ~10 MB for
// the 2048-bit group, built lazily only for groups whose generator is
// actually exponentiated — while cutting PowG to one modular multiply per
// window instead of the square-and-multiply ladder of a generic Exp
// (measured ~2.9× on the 512-bit group, ~3.5× on the 1024-bit group).
const fixedBaseWindow = 7

// FixedBase is a windowed-comb precomputation (Brickell–Gordon–McCurley–
// Wilson) for exponentiating one fixed base. The table stores
//
//	table[i][j] = base^(j · 2^(i·w)) mod p   for j in [0, 2^w)
//
// so base^e is the product of one table entry per w-bit digit of e: no
// squarings at all, and the multiplies are independent of the base.
//
// A FixedBase is immutable after construction and safe for concurrent use.
type FixedBase struct {
	g     *Group
	base  *big.Int
	w     uint
	bits  int // exponent capacity; larger exponents fall back to generic Exp
	table [][]*big.Int
}

// NewFixedBase builds the comb table for base in g, sized for exponents up
// to the subgroup order q (every private share and reduced exponent in this
// package lives in [0, q)). A window width of 0 selects the default.
func NewFixedBase(g *Group, base *big.Int, w uint) *FixedBase {
	if w == 0 {
		w = fixedBaseWindow
	}
	bits := g.Q.BitLen()
	blocks := (bits + int(w) - 1) / int(w)
	fb := &FixedBase{
		g:     g,
		base:  new(big.Int).Set(base),
		w:     w,
		bits:  blocks * int(w),
		table: make([][]*big.Int, blocks),
	}
	stride := new(big.Int).Set(base) // base^(2^(i·w)) for the current block
	for i := 0; i < blocks; i++ {
		row := make([]*big.Int, 1<<w)
		row[0] = big.NewInt(1)
		for j := 1; j < 1<<w; j++ {
			row[j] = g.Mul(row[j-1], stride)
		}
		fb.table[i] = row
		if i+1 < blocks {
			next := new(big.Int).Set(stride)
			for s := uint(0); s < w; s++ {
				next = g.Mul(next, next)
			}
			stride = next
		}
	}
	return fb
}

// Exp computes base^e mod p from the table. It is exact — bit-identical to
// new(big.Int).Exp — and does no counting; callers that account
// exponentiations go through Group.PowG. Exponents outside the table's
// range (negative, or wider than q) take the generic path.
func (fb *FixedBase) Exp(e *big.Int) *big.Int {
	if e == nil || e.Sign() < 0 || e.BitLen() > fb.bits {
		return new(big.Int).Exp(fb.base, e, fb.g.P)
	}
	acc := big.NewInt(1)
	tmp := new(big.Int)
	for i, row := range fb.table {
		d := digit(e, uint(i)*fb.w, fb.w)
		if d == 0 {
			continue
		}
		tmp.Mul(acc, row[d])
		acc.Mod(tmp, fb.g.P)
	}
	return acc
}

// digit extracts the w-bit digit of e starting at bit off.
func digit(e *big.Int, off, w uint) uint {
	var d uint
	for k := uint(0); k < w; k++ {
		d |= e.Bit(int(off+k)) << k
	}
	return d
}

// fixedBaseCache lazily holds one generator table per group. It lives
// outside Group so the predefined groups stay plain value-comparable
// structs; entries are built at most once.
var fixedBaseCache sync.Map // *Group -> *fbEntry

type fbEntry struct {
	once sync.Once
	fb   *FixedBase
}

// fixedBase returns the cached generator table for g, building it on first
// use.
func (g *Group) fixedBase() *FixedBase {
	v, _ := fixedBaseCache.LoadOrStore(g, &fbEntry{})
	e := v.(*fbEntry)
	e.once.Do(func() { e.fb = NewFixedBase(g, g.G, fixedBaseWindow) })
	return e.fb
}

// Precompute eagerly builds the fixed-base table for g's generator, so the
// first PowG on a latency-sensitive path does not pay the build cost.
func (g *Group) Precompute() {
	g.fixedBase()
}
