package dh

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

func TestGroupParameters(t *testing.T) {
	for _, g := range []*Group{Group512, Group768, Group1024, Group2048} {
		g := g
		if g.P.BitLen() != g.Bits {
			t.Errorf("%d-bit group: modulus has %d bits", g.Bits, g.P.BitLen())
		}
		if !g.P.ProbablyPrime(32) {
			t.Errorf("%d-bit group: p not prime", g.Bits)
		}
		if !g.Q.ProbablyPrime(32) {
			t.Errorf("%d-bit group: q not prime", g.Bits)
		}
		// p = 2q + 1
		want := new(big.Int).Lsh(g.Q, 1)
		want.Add(want, big.NewInt(1))
		if want.Cmp(g.P) != 0 {
			t.Errorf("%d-bit group: p != 2q+1", g.Bits)
		}
		// The generator must lie in the order-q subgroup.
		if err := g.CheckElement(g.G); err != nil {
			t.Errorf("%d-bit group: generator check: %v", g.Bits, err)
		}
	}
}

func TestGroupForBits(t *testing.T) {
	for _, bits := range []int{512, 768, 1024, 2048} {
		g, err := GroupForBits(bits)
		if err != nil {
			t.Fatalf("GroupForBits(%d): %v", bits, err)
		}
		if g.Bits != bits {
			t.Fatalf("GroupForBits(%d) returned %d-bit group", bits, g.Bits)
		}
	}
	if _, err := GroupForBits(513); err == nil {
		t.Fatal("GroupForBits(513) should fail")
	}
}

func TestTwoPartyAgreement(t *testing.T) {
	g := Group512
	a, b := g.MustShare(), g.MustShare()
	ga := g.PowG(a, nil, "")
	gb := g.PowG(b, nil, "")
	k1 := g.Exp(gb, a, nil, "")
	k2 := g.Exp(ga, b, nil, "")
	if k1.Cmp(k2) != 0 {
		t.Fatal("two-party DH keys disagree")
	}
}

func TestNewShareRange(t *testing.T) {
	g := Group512
	for i := 0; i < 64; i++ {
		s, err := g.NewShare(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckShare(s); err != nil {
			t.Fatalf("share %v out of range: %v", s, err)
		}
	}
}

func TestInverseQ(t *testing.T) {
	g := Group512
	s := g.MustShare()
	inv, err := g.InverseQ(s)
	if err != nil {
		t.Fatal(err)
	}
	prod := new(big.Int).Mul(s, inv)
	prod.Mod(prod, g.Q)
	if prod.Cmp(big.NewInt(1)) != 0 {
		t.Fatal("s * s^-1 != 1 mod q")
	}
	// Exponentiating by a share and then its inverse is the identity on
	// subgroup elements: the algebra Cliques MERGE relies on.
	base := g.PowG(g.MustShare(), nil, "")
	up := g.Exp(base, s, nil, "")
	down := g.Exp(up, inv, nil, "")
	if down.Cmp(base) != 0 {
		t.Fatal("exp/inverse-exp round trip failed")
	}
}

func TestInverseQNotInvertible(t *testing.T) {
	g := Group512
	if _, err := g.InverseQ(new(big.Int).Set(g.Q)); err == nil {
		t.Fatal("q has no inverse mod q; expected error")
	}
	if _, err := g.InverseQ(big.NewInt(0)); err == nil {
		t.Fatal("0 has no inverse mod q; expected error")
	}
}

func TestCheckElementRejectsOutsiders(t *testing.T) {
	g := Group512
	cases := []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Set(g.P),
		new(big.Int).Add(g.P, big.NewInt(5)),
		new(big.Int).Neg(big.NewInt(3)),
	}
	for _, v := range cases {
		if err := g.CheckElement(v); err == nil {
			t.Errorf("CheckElement(%v) accepted a non-element", v)
		}
	}
	// An element of order 2q (a non-residue) must be rejected too. For a
	// safe prime, -1 = p-1 has order 2.
	minusOne := new(big.Int).Sub(g.P, big.NewInt(1))
	if err := g.CheckElement(minusOne); err == nil {
		t.Error("CheckElement accepted p-1 (order-2 element)")
	}
}

func TestCheckShareRejectsOutOfRange(t *testing.T) {
	g := Group512
	for _, s := range []*big.Int{nil, big.NewInt(0), big.NewInt(1), new(big.Int).Set(g.Q), new(big.Int).Add(g.Q, big.NewInt(1))} {
		if err := g.CheckShare(s); err == nil {
			t.Errorf("CheckShare(%v) accepted an out-of-range share", s)
		}
	}
	if err := g.CheckShare(big.NewInt(2)); err != nil {
		t.Errorf("CheckShare(2): %v", err)
	}
}

// Property: for random shares, exponentiation commutes — the foundation of
// every group-DH identity used by Cliques.
func TestExpCommutesProperty(t *testing.T) {
	g := Group512
	f := func(seedA, seedB int64) bool {
		a := new(big.Int).Mod(big.NewInt(seedA), g.Q)
		b := new(big.Int).Mod(big.NewInt(seedB), g.Q)
		a.Add(a.Abs(a), big.NewInt(2))
		b.Add(b.Abs(b), big.NewInt(2))
		x := g.Exp(g.PowG(a, nil, ""), b, nil, "")
		y := g.Exp(g.PowG(b, nil, ""), a, nil, "")
		return x.Cmp(y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMul(t *testing.T) {
	g := Group512
	a := g.PowG(g.MustShare(), nil, "")
	b := g.PowG(g.MustShare(), nil, "")
	ab := g.Mul(a, b)
	if ab.Cmp(g.P) >= 0 || ab.Sign() <= 0 {
		t.Fatal("Mul result out of range")
	}
	// The product of two subgroup elements is a subgroup element.
	if err := g.CheckElement(ab); err != nil {
		t.Fatalf("product left the subgroup: %v", err)
	}
}

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc(OpSessionKey)
	c.Inc(OpSessionKey)
	c.Inc(OpKeyEncrypt)
	if got := c.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	if got := c.Get(OpSessionKey); got != 2 {
		t.Fatalf("Get(session) = %d, want 2", got)
	}
	snap := c.Snapshot()
	if snap[OpKeyEncrypt] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	labels := c.Labels()
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}
	c.Reset()
	if c.Total() != 0 || c.Get(OpSessionKey) != 0 {
		t.Fatal("Reset did not clear the counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc(OpShareUpdate)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(OpShareUpdate); got != 800 {
		t.Fatalf("concurrent count = %d, want 800", got)
	}
}

func TestExpCounts(t *testing.T) {
	g := Group512
	c := NewCounter()
	s := g.MustShare()
	g.PowG(s, c, OpSessionKey)
	g.Exp(g.G, s, c, OpKeyEncrypt)
	if c.Total() != 2 {
		t.Fatalf("expected 2 counted exponentiations, got %d", c.Total())
	}
	// nil counter must not panic and must not count.
	g.PowG(s, nil, OpSessionKey)
	if c.Total() != 2 {
		t.Fatal("nil-counter exponentiation was counted")
	}
}

func TestReduceQ(t *testing.T) {
	g := Group512
	v := new(big.Int).Add(g.Q, big.NewInt(7))
	r := g.ReduceQ(v)
	if r.Cmp(big.NewInt(7)) != 0 {
		t.Fatalf("ReduceQ = %v, want 7", r)
	}
}

func BenchmarkModExp512(b *testing.B) {
	benchModExp(b, Group512)
}

func BenchmarkModExp1024(b *testing.B) {
	benchModExp(b, Group1024)
}

func benchModExp(b *testing.B, g *Group) {
	s := g.MustShare()
	base := g.PowG(g.MustShare(), nil, "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Exp(base, s, nil, "")
	}
}
