package dh

import (
	"fmt"
	"math/big"
	"testing"
)

// withWorkers runs f under a fixed batch pool width, restoring the
// previous setting afterwards.
func withWorkers(n int, f func()) {
	prev := SetBatchWorkers(n)
	defer SetBatchWorkers(prev)
	f()
}

func TestExpBatchMatchesSerial(t *testing.T) {
	g := Group512
	exp := g.MustShare()
	bases := make(map[string]*big.Int)
	for i := 0; i < 9; i++ {
		bases[fmt.Sprintf("m%d", i)] = g.PowG(g.MustShare(), nil, "")
	}

	want := make(map[string]*big.Int, len(bases))
	for name, b := range bases {
		want[name] = new(big.Int).Exp(b, exp, g.P)
	}

	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			withWorkers(workers, func() {
				c := NewCounter()
				got := g.ExpBatch(bases, exp, c, OpKeyEncrypt)
				if len(got) != len(bases) {
					t.Fatalf("got %d entries, want %d", len(got), len(bases))
				}
				for name := range bases {
					if got[name].Cmp(want[name]) != 0 {
						t.Errorf("entry %s differs from serial Exp", name)
					}
				}
				if c.Get(OpKeyEncrypt) != len(bases) || c.Total() != len(bases) {
					t.Errorf("counted %d under label, %d total; want %d of each",
						c.Get(OpKeyEncrypt), c.Total(), len(bases))
				}
			})
		})
	}
}

func TestExpBatchSliceMatchesSerial(t *testing.T) {
	g := Group512
	exp := g.MustShare()
	var bases []*big.Int
	for i := 0; i < 7; i++ {
		bases = append(bases, g.PowG(g.MustShare(), nil, ""))
	}
	var serial, parallel []*big.Int
	c1, c2 := NewCounter(), NewCounter()
	withWorkers(1, func() { serial = g.ExpBatchSlice(bases, exp, c1, OpShareUpdate) })
	withWorkers(4, func() { parallel = g.ExpBatchSlice(bases, exp, c2, OpShareUpdate) })
	for i := range bases {
		if serial[i].Cmp(parallel[i]) != 0 {
			t.Errorf("slice entry %d: serial != parallel", i)
		}
	}
	if c1.Total() != c2.Total() || c1.Get(OpShareUpdate) != c2.Get(OpShareUpdate) {
		t.Errorf("counter parity broken: serial %d, parallel %d", c1.Total(), c2.Total())
	}
}

func TestExpBatchExpsMatchesSerial(t *testing.T) {
	g := Group512
	base := g.PowG(g.MustShare(), nil, "")
	exps := make(map[string]*big.Int)
	for i := 0; i < 6; i++ {
		exps[fmt.Sprintf("m%d", i)] = g.MustShare()
	}
	var serial, parallel map[string]*big.Int
	c1, c2 := NewCounter(), NewCounter()
	withWorkers(1, func() { serial = g.ExpBatchExps(base, exps, c1, OpKeyEncrypt) })
	withWorkers(8, func() { parallel = g.ExpBatchExps(base, exps, c2, OpKeyEncrypt) })
	for name := range exps {
		if serial[name].Cmp(parallel[name]) != 0 {
			t.Errorf("entry %s: serial != parallel", name)
		}
		if want := new(big.Int).Exp(base, exps[name], g.P); serial[name].Cmp(want) != 0 {
			t.Errorf("entry %s: differs from generic Exp", name)
		}
	}
	if c1.Total() != c2.Total() {
		t.Errorf("counter parity broken: serial %d, parallel %d", c1.Total(), c2.Total())
	}
}

func TestExpBatchEmptyAndSingle(t *testing.T) {
	g := Group512
	exp := g.MustShare()
	if got := g.ExpBatch(nil, exp, nil, ""); len(got) != 0 {
		t.Fatalf("empty batch returned %d entries", len(got))
	}
	one := map[string]*big.Int{"a": g.G}
	got := g.ExpBatch(one, exp, nil, "")
	if want := new(big.Int).Exp(g.G, exp, g.P); got["a"].Cmp(want) != 0 {
		t.Fatalf("single-entry batch differs from Exp")
	}
}

func TestBatchWorkersClamping(t *testing.T) {
	withWorkers(0, func() {
		if w := BatchWorkers(0); w != 1 {
			t.Errorf("BatchWorkers(0) = %d, want 1", w)
		}
		if w := BatchWorkers(1); w != 1 {
			t.Errorf("BatchWorkers(1) = %d, want 1", w)
		}
	})
	withWorkers(4, func() {
		if w := BatchWorkers(100); w != 4 {
			t.Errorf("BatchWorkers(100) = %d, want 4", w)
		}
		if w := BatchWorkers(2); w != 2 {
			t.Errorf("BatchWorkers(2) = %d, want 2", w)
		}
	})
}
