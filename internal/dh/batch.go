package dh

import (
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
)

// The ExpBatch family fans independent modular exponentiations across a
// worker pool. The per-member loops of both key-agreement protocols — the
// Cliques controller refreshing n-1 partials, the joiner folding its share
// into n-1 entries, the CKD controller blinding the session key under n-1
// pairwise exponents — are embarrassingly parallel: same exponent (or same
// base), no data dependencies. Batching them turns the paper's O(n) serial
// exponentiation latency into O(n / cores) without touching the protocol:
// results are bit-identical to the serial loop and every exponentiation
// still records exactly one Counter.Inc under the same label, so the
// Table 2-4 accounting is preserved (Counter is goroutine-safe).

// batchWorkers overrides the pool width; 0 means runtime.GOMAXPROCS.
var batchWorkers atomic.Int64

// SetBatchWorkers sets the worker-pool width used by the ExpBatch family
// and returns the previous setting. n <= 1 forces the serial path (the
// parity tests run every scenario both ways); 0 restores the default of
// runtime.GOMAXPROCS workers.
func SetBatchWorkers(n int) int {
	return int(batchWorkers.Swap(int64(n)))
}

// BatchWorkers reports the effective pool width for a batch of n
// exponentiations.
func BatchWorkers(n int) int {
	w := int(batchWorkers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// expMany computes n independent exponentiations base(i)^exp(i) mod p,
// fanning them across the worker pool (serially when the pool width is 1).
// Each exponentiation counts once under label, exactly as a serial loop of
// g.Exp calls would.
func (g *Group) expMany(n int, base, exp func(i int) *big.Int, c *Counter, label string) []*big.Int {
	out := make([]*big.Int, n)
	w := BatchWorkers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = g.Exp(base(i), exp(i), c, label)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = g.Exp(base(i), exp(i), c, label)
			}
		}()
	}
	wg.Wait()
	return out
}

// ExpBatch computes bases[name]^exp mod p for every entry — the Cliques
// broadcast shape: one fresh share folded into each member's partial. One
// Counter.Inc per entry under label.
func (g *Group) ExpBatch(bases map[string]*big.Int, exp *big.Int, c *Counter, label string) map[string]*big.Int {
	names := make([]string, 0, len(bases))
	for name := range bases {
		names = append(names, name)
	}
	vals := g.expMany(len(names),
		func(i int) *big.Int { return bases[names[i]] },
		func(int) *big.Int { return exp },
		c, label)
	out := make(map[string]*big.Int, len(names)+1)
	for i, name := range names {
		out[name] = vals[i]
	}
	return out
}

// ExpBatchSlice is ExpBatch for positional bases.
func (g *Group) ExpBatchSlice(bases []*big.Int, exp *big.Int, c *Counter, label string) []*big.Int {
	return g.expMany(len(bases),
		func(i int) *big.Int { return bases[i] },
		func(int) *big.Int { return exp },
		c, label)
}

// ExpBatchExps computes base^exps[name] mod p for every entry — the CKD
// key-distribution shape: one session key blinded under each member's
// pairwise exponent. One Counter.Inc per entry under label.
func (g *Group) ExpBatchExps(base *big.Int, exps map[string]*big.Int, c *Counter, label string) map[string]*big.Int {
	names := make([]string, 0, len(exps))
	for name := range exps {
		names = append(names, name)
	}
	vals := g.expMany(len(names),
		func(int) *big.Int { return base },
		func(i int) *big.Int { return exps[names[i]] },
		c, label)
	out := make(map[string]*big.Int, len(names)+1)
	for i, name := range names {
		out[name] = vals[i]
	}
	return out
}
