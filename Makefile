GO ?= go

.PHONY: check vet build test race bench-exp

## check: the full local gate — vet, build, tests, and the race suite on
## the packages with concurrency-sensitive fast paths.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dh ./internal/cliques ./internal/crypt

## bench-exp: regenerate BENCH_exp.json (fixed-base speedup, batch-pool
## scaling, Seal/Open pooling cost).
bench-exp:
	$(GO) test -run TestWriteBenchExpJSON -v .
