GO ?= go

.PHONY: check vet build test race chaos bench-exp bench-obs obs-smoke

## check: the full local gate — vet, build, tests, and the race suite on
## the packages with concurrency-sensitive fast paths.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dh ./internal/cliques ./internal/crypt \
		./internal/spread ./internal/flush ./internal/core

## chaos: the deterministic fault-schedule matrix (8 seeds x 2 protocols,
## 5 cluster-wide invariants) under the race detector. A failing seed
## reproduces with: go test ./internal/chaos -run TestChaos -chaos.seed=N
chaos:
	$(GO) test -race -timeout 3000s ./internal/chaos

## bench-exp: regenerate BENCH_exp.json (fixed-base speedup, batch-pool
## scaling, Seal/Open pooling cost).
bench-exp:
	$(GO) test -run TestWriteBenchExpJSON -v .

## bench-obs: regenerate BENCH_obs.json (per-class rekey-latency and
## flush-round histograms from a deterministic chaos run).
bench-obs:
	$(GO) run ./cmd/sgcbench -chaos -seed 1 -events 33 -obs-out BENCH_obs.json

## obs-smoke: boot a 3-daemon TCP cluster with -debug-addr, curl the
## introspection endpoints, and assert the payloads are well-formed JSON.
obs-smoke:
	./scripts/obs-smoke.sh
