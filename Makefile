GO ?= go

# The rekey sweep behind BENCH_rekey.json and the bench-diff gate.
SWEEP_FLAGS ?= -sizes 2..8 -batch 3

# Messages per sweep point for the bulk-throughput gate; the checked-in
# baseline uses the default.
BULK_COUNT ?= 20000

.PHONY: check vet build test race chaos chaos-tcp chaos-tcp-short bench-exp \
	bench-obs bench-rekey bench-report bench-diff bench-wire bench-wire-diff \
	bench-bulk bench-bulk-diff obs-smoke mon-smoke crit-smoke

## check: the full local gate — vet, build, tests, the race suite on the
## packages with concurrency-sensitive fast paths, a short chaos schedule
## replayed over real TCP sockets, the causal-order gate, and the
## regression gates against the checked-in baselines (rekey latency, the
## data-plane wire sweep, and bulk throughput).
check: vet build test race chaos-tcp-short crit-smoke bench-diff bench-wire-diff bench-bulk-diff

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dh ./internal/cliques ./internal/crypt \
		./internal/spread ./internal/flush ./internal/core \
		./internal/transport/... ./internal/obs/... ./cmd/sgcmon

## chaos: the deterministic fault-schedule matrix (8 seeds x 2 protocols,
## 6 cluster-wide invariants) under the race detector. A failing seed
## reproduces with: go test ./internal/chaos -run TestChaos -chaos.seed=N
chaos:
	$(GO) test -race -timeout 3000s ./internal/chaos

## chaos-tcp: seeded fault schedules (partition/heal, crash/restart, link
## reset under load) replayed over real TCP sockets through the faultnet
## relay, under the race detector — the redial supervisor, bounded send
## queues, and peer-down eviction all run against live kernel connections.
chaos-tcp:
	$(GO) test -race -timeout 600s -count=1 ./internal/chaos -run TestChaosTCP -v

## chaos-tcp-short: the make-check smoke — one short reset-heavy TCP
## schedule, sized to finish in seconds.
chaos-tcp-short:
	$(GO) test -timeout 120s -count=1 ./internal/chaos -run TestChaosTCPShort

## bench-exp: regenerate BENCH_exp.json (fixed-base speedup, batch-pool
## scaling, Seal/Open pooling cost).
bench-exp:
	$(GO) test -run TestWriteBenchExpJSON -v .

## bench-obs: regenerate BENCH_obs.json (per-class rekey-latency and
## flush-round histograms from a deterministic chaos run).
bench-obs:
	$(GO) run ./cmd/sgcbench -chaos -seed 1 -events 33 -obs-out BENCH_obs.json

## bench-rekey: regenerate the checked-in BENCH_rekey.json baseline (live
## rekey sweep over both protocols, phase-decomposed by the trace analyzer).
bench-rekey:
	$(GO) run ./cmd/sgcbench $(SWEEP_FLAGS) -rekey-out BENCH_rekey.json

## bench-report: render the checked-in phase-decomposition baseline.
bench-report:
	$(GO) run ./cmd/sgctrace report BENCH_rekey.json

## bench-diff: the regression gate — rerun the sweep and compare it against
## the checked-in baseline; exits nonzero when a tracked metric regressed
## (exponentiation counts exactly, timings by ratio with a noise floor).
bench-diff:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/sgcbench $(SWEEP_FLAGS) -rekey-out $$tmp >/dev/null && \
	$(GO) run ./cmd/sgctrace diff BENCH_rekey.json $$tmp; \
	st=$$?; rm -f $$tmp; exit $$st

## bench-wire: regenerate the checked-in BENCH_wire.json baseline (wire
## codec microbench per kind, codec vs the legacy gob path, plus the
## message-latency-vs-size sweep over the live secure stack).
bench-wire:
	$(GO) run ./cmd/sgcbench -wire -wire-out BENCH_wire.json

## bench-wire-diff: the data-plane regression gate — rerun the wire sweep
## and compare it against the checked-in baseline; encoded frame sizes
## gate exactly (they are deterministic codec properties), encode/decode
## nanoseconds and end-to-end latency by a generous ratio with noise
## floors.
bench-wire-diff:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/sgcbench -wire -wire-out $$tmp >/dev/null && \
	$(GO) run ./cmd/sgctrace diff BENCH_wire.json $$tmp; \
	st=$$?; rm -f $$tmp; exit $$st

## bench-bulk: regenerate the checked-in BENCH_throughput.json baseline
## (sustained encrypted AGREED multicast rate over message sizes, cipher
## suites and group sizes, best of several runs per point).
bench-bulk:
	$(GO) run ./cmd/sgcbench -bulk -bulk-count $(BULK_COUNT) -bulk-out BENCH_throughput.json

## bench-bulk-diff: the throughput regression gate — rerun the bulk sweep
## and compare it against the checked-in baseline; fails when any cell's
## delivery rate collapses below baseline/ratio (throughput gates
## downward, unlike the timing gates).
bench-bulk-diff:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/sgcbench -bulk -bulk-count $(BULK_COUNT) -bulk-out $$tmp >/dev/null && \
	$(GO) run ./cmd/sgctrace diff BENCH_throughput.json $$tmp; \
	st=$$?; rm -f $$tmp; exit $$st

## crit-smoke: the causal-order gate — the happens-before checker's unit
## suite plus pinned chaos schedules replayed in-memory, with host clocks
## skewed seconds apart, and over real TCP, all of which must satisfy
## invariant I6; the trace analyzer must also extract a fully-connected
## rekey critical path from a live run.
crit-smoke:
	$(GO) test -timeout 300s -count=1 ./internal/obs/causal ./internal/chaos \
		-run 'TestHappensBefore|TestCheck|TestCriticalPath|TestLookup|TestBuild|TestChaosCausalDifferential|TestChaosCriticalPathConnected'

## obs-smoke: boot a 3-daemon TCP cluster with -debug-addr and embedded
## secure clients, curl the introspection endpoints, then run the sgctrace
## collect -> report pipeline and assert a fully-phased join rekey.
obs-smoke:
	./scripts/obs-smoke.sh

## mon-smoke: the live-monitoring gate — 3-daemon TCP cluster with
## streaming telemetry and armed flight recorders; sgcmon's one-shot
## evaluation must pass on the healthy fleet (exit 0), alert after a
## daemon is killed (exit 3), and the survivors' flight bundles must
## re-read through sgctrace report.
mon-smoke:
	./scripts/mon-smoke.sh
