// Command rekey demonstrates the key management policies of the secure
// group layer: explicit key refresh (the CLQ_API REFRESH operation,
// forwarded to the floating controller when requested by another member)
// and the key-epoch progression that gives the system its key independence
// and perfect forward secrecy — every membership change and every refresh
// installs a secret that past and future configurations cannot derive.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/securespread"
)

const group = "vault"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := securespread.NewLocalCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	users := []string{"alpha", "beta", "gamma"}
	sessions := make([]*securespread.Session, len(users))
	for i, u := range users {
		s, err := securespread.Connect(cluster.Daemons[i], u)
		if err != nil {
			return err
		}
		sessions[i] = s
		if err := s.Join(group); err != nil {
			return err
		}
		for j := 0; j <= i; j++ {
			if _, err := waitView(sessions[j], i+1, 0); err != nil {
				return err
			}
		}
	}
	_, epoch, _ := sessions[0].GroupState(group)
	log.Printf("group established at epoch %d", epoch)

	// Explicit refresh requested by a NON-controller: the request is
	// forwarded to the controller (the newest member under Cliques), who
	// re-keys the whole group.
	log.Printf("alpha requests a key refresh (controller is gamma)")
	if err := sessions[0].KeyRefresh(group); err != nil {
		return err
	}
	for _, s := range sessions {
		v, err := waitView(s, 3, epoch+1)
		if err != nil {
			return err
		}
		if s == sessions[0] {
			log.Printf("refreshed to epoch %d (controller %s)", v.Epoch, v.Controller)
		}
	}

	// Key independence across a leave: gamma departs with knowledge of
	// epoch e; the survivors move to e+1, which gamma's state cannot
	// produce — nothing encrypted from now on is readable by gamma.
	_, before, _ := sessions[0].GroupState(group)
	log.Printf("gamma leaves at epoch %d", before)
	if err := sessions[2].Leave(group); err != nil {
		return err
	}
	for _, s := range sessions[:2] {
		v, err := waitView(s, 2, before+1)
		if err != nil {
			return err
		}
		if s == sessions[0] {
			log.Printf("survivors re-keyed to epoch %d", v.Epoch)
		}
	}
	if err := sessions[0].Multicast(group, []byte("post-departure secret")); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ev, ok := sessions[1].Receive(time.Until(deadline))
		if !ok {
			return fmt.Errorf("no message before deadline")
		}
		if m, isMsg := ev.(securespread.Message); isMsg {
			log.Printf("beta still decrypts fine: %q", m.Data)
			break
		}
	}

	// Periodic refresh: a fresh pair of sessions with WithAutoRefresh
	// would rotate keys on a timer; here we show three manual rotations
	// back to back and print the epoch history.
	log.Printf("rotating the key three more times")
	for i := 0; i < 3; i++ {
		_, e, _ := sessions[0].GroupState(group)
		if err := sessions[1].KeyRefresh(group); err != nil {
			return err
		}
		for _, s := range sessions[:2] {
			if _, err := waitView(s, 2, e+1); err != nil {
				return err
			}
		}
		_, e2, _ := sessions[0].GroupState(group)
		log.Printf("  rotation %d: epoch %d -> %d", i+1, e, e2)
	}
	return nil
}

// waitView waits until the session reports a secure view with n members
// and epoch >= minEpoch.
func waitView(s *securespread.Session, n int, minEpoch uint64) (securespread.SecureView, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if v, isView := ev.(securespread.SecureView); isView && len(v.Members) == n && v.Epoch >= minEpoch {
			return v, nil
		}
	}
	return securespread.SecureView{}, fmt.Errorf("%s: no %d-member view at epoch>=%d", s.Name(), n, minEpoch)
}
