// Command whiteboard simulates the collaborative applications the paper's
// introduction motivates (conferencing, shared white-boards): several
// members concurrently draw strokes on a shared canvas over the secure
// group. The agreed total order of the group communication system makes
// every member apply the strokes in the same order, so all canvases end up
// identical — verified with a digest at the end — while every stroke
// travels encrypted under the group key.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/securespread"
)

const (
	group    = "whiteboard"
	artists  = 4
	strokes  = 25 // strokes per artist
	canvasSz = 32
)

// stroke is one drawing operation.
type stroke struct {
	Artist string `json:"artist"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
	Color  byte   `json:"color"`
}

// canvas applies strokes in delivery order.
type canvas struct {
	cells [canvasSz][canvasSz]byte
	n     int
}

func (c *canvas) apply(s stroke) {
	c.cells[s.Y%canvasSz][s.X%canvasSz] = s.Color
	c.n++
}

func (c *canvas) digest() string {
	h := sha256.New()
	for _, row := range c.cells {
		h.Write(row[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := securespread.NewLocalCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	sessions := make([]*securespread.Session, artists)
	for i := range sessions {
		s, err := securespread.Connect(cluster.Daemons[i%3], fmt.Sprintf("artist%d", i))
		if err != nil {
			return err
		}
		sessions[i] = s
		if err := s.Join(group); err != nil {
			return err
		}
	}
	// Wait until every artist sees the full secure group.
	for _, s := range sessions {
		if err := waitSecureN(s, artists); err != nil {
			return err
		}
	}
	log.Printf("secure whiteboard with %d artists established", artists)

	// Every artist draws concurrently...
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *securespread.Session) {
			defer wg.Done()
			for k := 0; k < strokes; k++ {
				op := stroke{
					Artist: s.Name(),
					X:      (i*7 + k*13) % canvasSz,
					Y:      (i*11 + k*3) % canvasSz,
					Color:  byte(i + 1),
				}
				data, err := json.Marshal(op)
				if err != nil {
					log.Printf("marshal: %v", err)
					return
				}
				if err := s.Multicast(group, data); err != nil {
					log.Printf("%s: multicast: %v", s.Name(), err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()

	// ...and every artist applies all strokes in the agreed order.
	total := artists * strokes
	digests := make([]string, artists)
	for i, s := range sessions {
		cv := &canvas{}
		deadline := time.Now().Add(30 * time.Second)
		for cv.n < total && time.Now().Before(deadline) {
			ev, ok := s.Receive(time.Until(deadline))
			if !ok {
				break
			}
			m, isMsg := ev.(securespread.Message)
			if !isMsg {
				continue
			}
			var op stroke
			if err := json.Unmarshal(m.Data, &op); err != nil {
				return fmt.Errorf("bad stroke from %s: %w", m.Sender, err)
			}
			cv.apply(op)
		}
		if cv.n != total {
			return fmt.Errorf("%s applied %d/%d strokes", s.Name(), cv.n, total)
		}
		digests[i] = cv.digest()
		log.Printf("%s canvas digest: %s", s.Name(), digests[i])
	}
	for _, d := range digests[1:] {
		if d != digests[0] {
			return fmt.Errorf("canvases diverged: %v", digests)
		}
	}
	log.Printf("all %d canvases identical after %d encrypted strokes", artists, total)
	return nil
}

func waitSecureN(s *securespread.Session, n int) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if v, isView := ev.(securespread.SecureView); isView && len(v.Members) == n {
			return nil
		}
	}
	return fmt.Errorf("%s: no %d-member secure view", s.Name(), n)
}
