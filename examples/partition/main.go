// Command partition demonstrates the failure handling that gives the paper
// its title: a command-and-control style group survives a network
// partition, both components re-key and keep operating independently, and
// when the network heals the components merge under a fresh group secret.
// The demo uses the centralized CKD module to also show the controller
// role migrating when the controller is partitioned away.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/securespread"
)

const group = "ops"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := securespread.NewLocalCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Stop()
	daemonNames := make([]string, 3)
	for i, d := range cluster.Daemons {
		daemonNames[i] = d.Name()
	}

	users := []string{"hq", "field1", "field2"}
	sessions := make([]*securespread.Session, len(users))
	for i, u := range users {
		s, err := securespread.Connect(cluster.Daemons[i], u)
		if err != nil {
			return err
		}
		sessions[i] = s
		// Centralized key distribution: "hq" (the oldest member) is the
		// controller.
		if err := s.JoinWith(group, securespread.ProtoCKD, securespread.SuiteAES); err != nil {
			return err
		}
	}
	for _, s := range sessions {
		v, err := waitSecureN(s, 3)
		if err != nil {
			return err
		}
		if s == sessions[0] {
			log.Printf("group up: members=%v controller=%s epoch=%d", v.Members, v.Controller, v.Epoch)
		}
	}

	// The network partitions: hq on one side, the field units on the
	// other. Both components detect the failure, map it to a LEAVE
	// (Table 1), and re-key independently.
	log.Printf("--- partitioning the network: {%s} | {%s, %s}", daemonNames[0], daemonNames[1], daemonNames[2])
	cluster.Net.Partition(daemonNames[:1], daemonNames[1:])

	vhq, err := waitSecureN(sessions[0], 1)
	if err != nil {
		return err
	}
	log.Printf("hq component re-keyed: members=%v epoch=%d", vhq.Members, vhq.Epoch)
	for _, i := range []int{1, 2} {
		v, err := waitSecureN(sessions[i], 2)
		if err != nil {
			return err
		}
		if i == 1 {
			// The controller (hq) was partitioned away: the oldest
			// survivor takes over — the 3n-5 re-key of Table 3.
			log.Printf("field component re-keyed: members=%v new controller=%s epoch=%d",
				v.Members, v.Controller, v.Epoch)
		}
	}

	// Both components keep communicating securely within themselves.
	if err := sessions[1].Multicast(group, []byte("field status: holding position")); err != nil {
		return err
	}
	if m, err := waitMessage(sessions[2]); err != nil {
		return err
	} else {
		log.Printf("%s received intra-component: %q", sessions[2].Name(), m.Data)
	}

	// The network heals: the components merge and agree on a fresh key.
	log.Printf("--- healing the network")
	cluster.Net.Heal()
	for _, s := range sessions {
		v, err := waitSecureN(s, 3)
		if err != nil {
			return err
		}
		if s == sessions[0] {
			log.Printf("merged: members=%v controller=%s epoch=%d fullRekey=%v",
				v.Members, v.Controller, v.Epoch, v.FullRekey)
		}
	}
	if err := sessions[0].Multicast(group, []byte("all units: resume normal operations")); err != nil {
		return err
	}
	for _, i := range []int{1, 2} {
		m, err := waitMessage(sessions[i])
		if err != nil {
			return err
		}
		log.Printf("%s received post-merge: %q", sessions[i].Name(), m.Data)
	}
	return nil
}

func waitSecureN(s *securespread.Session, n int) (securespread.SecureView, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if v, isView := ev.(securespread.SecureView); isView && len(v.Members) == n {
			return v, nil
		}
	}
	return securespread.SecureView{}, fmt.Errorf("%s: no %d-member secure view", s.Name(), n)
}

func waitMessage(s *securespread.Session) (securespread.Message, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if m, isMsg := ev.(securespread.Message); isMsg {
			return m, nil
		}
	}
	return securespread.Message{}, fmt.Errorf("%s: timed out waiting for message", s.Name())
}
