// Command quickstart is the smallest end-to-end use of the secure group
// communication library: three members on a three-daemon cluster (the
// paper's testbed topology) join a group, exchange encrypted messages, and
// observe a re-key when one of them leaves.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/securespread"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// Three daemons over the in-memory transport, like the paper's three
	// machines.
	cluster, err := securespread.NewLocalCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Three members, one per daemon. Joins use the defaults: Cliques
	// (distributed) key agreement with Blowfish-CBC bulk encryption.
	users := []string{"alice", "bob", "carol"}
	sessions := make([]*securespread.Session, len(users))
	for i, user := range users {
		s, err := securespread.Connect(cluster.Daemons[i], user)
		if err != nil {
			return err
		}
		sessions[i] = s
		if err := s.Join("lobby"); err != nil {
			return err
		}
		// Wait until everyone currently in the group has re-keyed to
		// include the newcomer.
		for j := 0; j <= i; j++ {
			v, err := waitSecure(sessions[j], i+1)
			if err != nil {
				return err
			}
			if j == i {
				log.Printf("%s joined: members=%v epoch=%d controller=%s",
					user, v.Members, v.Epoch, v.Controller)
			}
		}
	}

	// Encrypted group messaging: everything on the wire is
	// Blowfish-encrypted and HMAC-authenticated under the agreed secret.
	if err := sessions[0].Multicast("lobby", []byte("hello, secure group!")); err != nil {
		return err
	}
	for _, s := range sessions {
		m, err := waitMessage(s)
		if err != nil {
			return err
		}
		log.Printf("%s received from %s: %q", s.Name(), m.Sender, m.Data)
	}

	// bob leaves: the survivors re-key so bob cannot read anything sent
	// afterwards (key independence).
	if err := sessions[1].Leave("lobby"); err != nil {
		return err
	}
	for _, i := range []int{0, 2} {
		v, err := waitSecure(sessions[i], 2)
		if err != nil {
			return err
		}
		log.Printf("%s re-keyed after leave: members=%v epoch=%d",
			sessions[i].Name(), v.Members, v.Epoch)
	}
	if err := sessions[2].Multicast("lobby", []byte("bob cannot read this")); err != nil {
		return err
	}
	m, err := waitMessage(sessions[0])
	if err != nil {
		return err
	}
	log.Printf("%s received post-leave message: %q", sessions[0].Name(), m.Data)
	return nil
}

// waitSecure consumes a session's events until the group is secured with n
// members.
func waitSecure(s *securespread.Session, n int) (securespread.SecureView, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if v, isView := ev.(securespread.SecureView); isView && len(v.Members) == n {
			return v, nil
		}
	}
	return securespread.SecureView{}, fmt.Errorf("%s: timed out waiting for %d-member secure view", s.Name(), n)
}

// waitMessage consumes events until a decrypted message arrives.
func waitMessage(s *securespread.Session) (securespread.Message, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if m, isMsg := ev.(securespread.Message); isMsg {
			return m, nil
		}
	}
	return securespread.Message{}, fmt.Errorf("%s: timed out waiting for message", s.Name())
}
