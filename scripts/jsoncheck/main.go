// Command jsoncheck exits 0 iff stdin is well-formed JSON. It backs
// scripts/obs-smoke.sh, which must not depend on python or jq being
// installed.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !json.Valid(data) {
		fmt.Fprintln(os.Stderr, "jsoncheck: invalid JSON")
		os.Exit(1)
	}
}
