#!/bin/sh
# obs-smoke: boot a 3-daemon cluster with introspection enabled, curl the
# /metrics, /trace, and /healthz endpoints of every daemon, and assert the
# payloads are well-formed JSON with the expected fields. Exits nonzero on
# any failure. Requires: go, curl.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: building spreadd"
go build -o "$WORK/spreadd" ./cmd/spreadd

cat > "$WORK/segment.conf" <<EOF
d1 127.0.0.1:14801
d2 127.0.0.1:14802
d3 127.0.0.1:14803
EOF

DEBUG_PORTS="15801 15802 15803"
i=1
for port in $DEBUG_PORTS; do
    "$WORK/spreadd" -name "d$i" -config "$WORK/segment.conf" \
        -debug-addr "127.0.0.1:$port" > "$WORK/d$i.log" 2>&1 &
    PIDS="$PIDS $!"
    i=$((i + 1))
done

echo "obs-smoke: waiting for the 3-daemon view"
deadline=$(( $(date +%s) + 30 ))
while :; do
    if curl -fsS "http://127.0.0.1:15801/metrics" 2>/dev/null \
        | grep -q '"spread_views_installed": [1-9]'; then
        break
    fi
    if [ "$(date +%s)" -gt "$deadline" ]; then
        echo "obs-smoke: FAIL: daemons never installed a view" >&2
        cat "$WORK"/d*.log >&2
        exit 1
    fi
    sleep 0.2
done

fail=0
check_json() {
    # $1 = url, $2 = required substring
    body=$(curl -fsS "$1") || { echo "obs-smoke: FAIL: GET $1" >&2; fail=1; return; }
    # Well-formed JSON: python is not guaranteed, so round-trip through go.
    if ! printf '%s' "$body" | go run ./scripts/jsoncheck >/dev/null 2>&1; then
        echo "obs-smoke: FAIL: $1 is not valid JSON: $body" >&2
        fail=1
        return
    fi
    case "$body" in
        *"$2"*) ;;
        *) echo "obs-smoke: FAIL: $1 missing $2: $body" >&2; fail=1 ;;
    esac
}

for port in $DEBUG_PORTS; do
    base="http://127.0.0.1:$port"
    check_json "$base/metrics" '"spread_views_installed"'
    check_json "$base/trace" '"view-install"'
    check_json "$base/healthz" '"ok"'
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "obs-smoke: PASS (3 daemons, 9 endpoints)"
