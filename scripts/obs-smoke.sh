#!/bin/sh
# obs-smoke: boot a 3-daemon cluster with introspection and an embedded
# secure client per daemon (staggered joins, so later joins rekey an
# established group), curl the /metrics, /trace, and /healthz endpoints of
# every daemon, then run the full sgctrace collect -> report pipeline and
# assert the cluster produced at least one fully-phased join rekey. Exits
# nonzero on any failure. Requires: go, curl.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: building spreadd and sgctrace"
go build -o "$WORK/spreadd" ./cmd/spreadd
go build -o "$WORK/sgctrace" ./cmd/sgctrace

cat > "$WORK/segment.conf" <<EOF
d1 127.0.0.1:14801
d2 127.0.0.1:14802
d3 127.0.0.1:14803
EOF

DEBUG_PORTS="15801 15802 15803"
i=1
for port in $DEBUG_PORTS; do
    "$WORK/spreadd" -name "d$i" -config "$WORK/segment.conf" \
        -debug-addr "127.0.0.1:$port" \
        -join-group smoke -join-proto cliques -join-delay "$((i - 1))s" \
        > "$WORK/d$i.log" 2>&1 &
    PIDS="$PIDS $!"
    i=$((i + 1))
done

echo "obs-smoke: waiting for the 3-daemon view"
deadline=$(( $(date +%s) + 30 ))
while :; do
    if curl -fsS "http://127.0.0.1:15801/metrics" 2>/dev/null \
        | grep -q '"spread_views_installed": [1-9]'; then
        break
    fi
    if [ "$(date +%s)" -gt "$deadline" ]; then
        echo "obs-smoke: FAIL: daemons never installed a view" >&2
        cat "$WORK"/d*.log >&2
        exit 1
    fi
    sleep 0.2
done

fail=0
check_json() {
    # $1 = url, $2 = required substring
    body=$(curl -fsS "$1") || { echo "obs-smoke: FAIL: GET $1" >&2; fail=1; return; }
    # Well-formed JSON: python is not guaranteed, so round-trip through go.
    if ! printf '%s' "$body" | go run ./scripts/jsoncheck >/dev/null 2>&1; then
        echo "obs-smoke: FAIL: $1 is not valid JSON: $body" >&2
        fail=1
        return
    fi
    case "$body" in
        *"$2"*) ;;
        *) echo "obs-smoke: FAIL: $1 missing $2: $body" >&2; fail=1 ;;
    esac
}

for port in $DEBUG_PORTS; do
    base="http://127.0.0.1:$port"
    check_json "$base/metrics" '"spread_views_installed"'
    check_json "$base/trace" '"view-install"'
    check_json "$base/healthz" '"ok"'
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi

# The trace pipeline: scrape every daemon with sgctrace collect, render the
# phase report, and require a fully-phased join rekey — the property the
# paper's figures decompose. The staggered embedded clients guarantee the
# second and third joins hit an already-keyed group, so a join-classified
# rekey must appear once the last client has keyed and sent.
echo "obs-smoke: waiting for a fully-phased join rekey"
deadline=$(( $(date +%s) + 60 ))
while :; do
    "$WORK/sgctrace" collect -group smoke -out "$WORK/bundle.json" \
        d1=http://127.0.0.1:15801 d2=http://127.0.0.1:15802 d3=http://127.0.0.1:15803 \
        2> "$WORK/collect.log" || {
        echo "obs-smoke: FAIL: sgctrace collect" >&2
        cat "$WORK/collect.log" >&2
        exit 1
    }
    "$WORK/sgctrace" report "$WORK/bundle.json" > "$WORK/report.txt"
    if grep 'class=join' "$WORK/report.txt" | grep -q 'fully-phased=true'; then
        break
    fi
    if [ "$(date +%s)" -gt "$deadline" ]; then
        echo "obs-smoke: FAIL: no fully-phased join rekey; report:" >&2
        cat "$WORK/report.txt" >&2
        cat "$WORK"/d*.log >&2
        exit 1
    fi
    sleep 1
done
echo "obs-smoke: sgctrace report:"
sed -n '1,25p' "$WORK/report.txt"

if grep -q 'UNREACHABLE' "$WORK/report.txt"; then
    echo "obs-smoke: FAIL: report marks a node unreachable" >&2
    exit 1
fi

# Causal critical path over the same bundle: the join rekey must come out
# as a happens-before-connected chain (every step ordered by the HLC
# graph, not by wall clocks agreeing), and the trace must carry zero
# causal-order violations — sgctrace crit exits 2 if any check fires.
echo "obs-smoke: sgctrace crit"
"$WORK/sgctrace" crit -group smoke "$WORK/bundle.json" > "$WORK/crit.txt" || {
    echo "obs-smoke: FAIL: sgctrace crit found causal-order violations" >&2
    cat "$WORK/crit.txt" >&2
    exit 1
}
if ! grep -q 'connected=true' "$WORK/crit.txt"; then
    echo "obs-smoke: FAIL: no happens-before-connected critical path" >&2
    cat "$WORK/crit.txt" >&2
    exit 1
fi
sed -n '1,20p' "$WORK/crit.txt"

echo "obs-smoke: PASS (3 daemons, 9 endpoints, 1+ fully-phased join rekey, connected critical path)"
