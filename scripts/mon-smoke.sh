#!/bin/sh
# mon-smoke: the live-monitoring gate. Boot a 3-daemon TCP cluster with
# streaming telemetry and armed flight recorders, let sgcmon watch it
# converge (one-shot evaluation must exit 0 with zero alerts), then kill a
# daemon and require the failure to surface on every layer: sgcmon's
# one-shot evaluation exits 3 with an unreachable alert, the survivors'
# flight recorders dump diagnostics bundles, and `sgctrace report` re-reads
# a bundle post-hoc. Exits nonzero on any failure. Requires: go, curl.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "mon-smoke: building spreadd, sgcmon, and sgctrace"
go build -o "$WORK/spreadd" ./cmd/spreadd
go build -o "$WORK/sgcmon" ./cmd/sgcmon
go build -o "$WORK/sgctrace" ./cmd/sgctrace

cat > "$WORK/segment.conf" <<EOF
d1 127.0.0.1:14901
d2 127.0.0.1:14902
d3 127.0.0.1:14903
EOF

DEBUG_PORTS="15901 15902 15903"
i=1
for port in $DEBUG_PORTS; do
    mkdir -p "$WORK/flight-d$i"
    "$WORK/spreadd" -name "d$i" -config "$WORK/segment.conf" \
        -debug-addr "127.0.0.1:$port" \
        -flight-dir "$WORK/flight-d$i" \
        -join-group mon -join-proto cliques -join-delay "$((i - 1))s" \
        > "$WORK/d$i.log" 2>&1 &
    PIDS="$PIDS $!"
    eval "PID_D$i=$!"
    i=$((i + 1))
done

echo "mon-smoke: waiting for the 3-daemon view and keyed group"
deadline=$(( $(date +%s) + 30 ))
while :; do
    if curl -fsS "http://127.0.0.1:15901/trace" 2>/dev/null \
        | grep -q '"key-install"'; then
        break
    fi
    if [ "$(date +%s)" -gt "$deadline" ]; then
        echo "mon-smoke: FAIL: group never keyed" >&2
        cat "$WORK"/d*.log >&2
        exit 1
    fi
    sleep 0.2
done

# /readyz distinguishes liveness from readiness: a formed cluster must
# answer 200 on both.
for port in $DEBUG_PORTS; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$port/readyz")
    if [ "$code" != "200" ]; then
        echo "mon-smoke: FAIL: /readyz on :$port returned $code" >&2
        curl -s "http://127.0.0.1:$port/readyz" >&2 || true
        exit 1
    fi
done

TARGETS="d1=http://127.0.0.1:15901 d2=http://127.0.0.1:15902 d3=http://127.0.0.1:15903"

# Phase 1: the healthy fleet. One-shot sgcmon must see every stream, a
# single converged view/epoch, and no alerts (exit 0).
echo "mon-smoke: sgcmon one-shot over the healthy fleet"
if ! "$WORK/sgcmon" -once -duration 5s $TARGETS > "$WORK/mon-healthy.txt" 2>&1; then
    echo "mon-smoke: FAIL: sgcmon alerted on a healthy fleet:" >&2
    cat "$WORK/mon-healthy.txt" >&2
    cat "$WORK"/d*.log >&2
    exit 1
fi
if ! grep -q 'convergence: OK' "$WORK/mon-healthy.txt"; then
    echo "mon-smoke: FAIL: healthy dashboard not converged:" >&2
    cat "$WORK/mon-healthy.txt" >&2
    exit 1
fi
sed -n '1,12p' "$WORK/mon-healthy.txt"

# Phase 2: kill d3 without ceremony. The survivors' redial supervisors
# mark the link down, their flight recorders trip on the alert, and the
# monitor sees the dead stream.
echo "mon-smoke: killing d3"
kill -9 "$PID_D3" 2>/dev/null || true

echo "mon-smoke: sgcmon one-shot over the degraded fleet (must exit 3)"
set +e
"$WORK/sgcmon" -once -duration 6s $TARGETS > "$WORK/mon-degraded.txt" 2>&1
st=$?
set -e
if [ "$st" -ne 3 ]; then
    echo "mon-smoke: FAIL: sgcmon exited $st on a degraded fleet (want 3):" >&2
    cat "$WORK/mon-degraded.txt" >&2
    cat "$WORK"/d*.log >&2
    exit 1
fi
if ! grep -q 'node d3 unreachable' "$WORK/mon-degraded.txt"; then
    echo "mon-smoke: FAIL: degraded dashboard has no unreachable alert:" >&2
    cat "$WORK/mon-degraded.txt" >&2
    exit 1
fi
grep '!' "$WORK/mon-degraded.txt" | sed -n '1,6p'

# Phase 3: the survivors' flight recorders must have dumped bundles (the
# peer-link-down alert fires the watchdog within a couple of poll ticks).
echo "mon-smoke: waiting for a flight bundle from a survivor"
deadline=$(( $(date +%s) + 30 ))
BUNDLE=""
while :; do
    for dir in "$WORK"/flight-d1 "$WORK"/flight-d2; do
        b=$(ls -d "$dir"/flight-* 2>/dev/null | head -1) || true
        if [ -n "$b" ]; then BUNDLE="$b"; break 2; fi
    done
    if [ "$(date +%s)" -gt "$deadline" ]; then
        echo "mon-smoke: FAIL: no survivor wrote a flight bundle" >&2
        ls -la "$WORK"/flight-d1 "$WORK"/flight-d2 >&2 || true
        cat "$WORK"/d1.log "$WORK"/d2.log >&2
        exit 1
    fi
    sleep 0.5
done
echo "mon-smoke: flight bundle: $BUNDLE"
for f in bundle.json goroutine.txt state.json; do
    if [ ! -s "$BUNDLE/$f" ]; then
        echo "mon-smoke: FAIL: bundle artifact $f missing or empty" >&2
        ls -la "$BUNDLE" >&2
        exit 1
    fi
done

# Phase 4: the post-hoc pipeline reads the live dump — sgctrace report on
# the bundle directory must name the trigger and render the trace report.
"$WORK/sgctrace" report "$BUNDLE" > "$WORK/report.txt"
if ! grep -q 'flight bundle:' "$WORK/report.txt"; then
    echo "mon-smoke: FAIL: sgctrace report does not show the flight reason:" >&2
    cat "$WORK/report.txt" >&2
    exit 1
fi
sed -n '1,10p' "$WORK/report.txt"

echo "mon-smoke: PASS (converged one-shot, alert on kill, flight bundle re-read post-hoc)"
