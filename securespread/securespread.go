// Package securespread is the public API of the secure group communication
// system: a Go reproduction of "Secure Group Communication in Asynchronous
// Networks with Failures: Integration and Experiments" (ICDCS 2000).
//
// The stack has four layers, mirroring Figure 2 of the paper:
//
//	application
//	   |  securespread.Session       (this package: secure groups API)
//	   |  secure group layer         (key agreement x VS integration)
//	   |  flush layer                (View Synchrony)
//	   |  spread daemons             (membership, ordering, groups)
//
// A process connects to a daemon, joins named groups, and picks — per
// group, at run time — a key agreement module ("cliques" for distributed
// contributory group Diffie-Hellman, "ckd" for the centralized baseline)
// and a cipher suite (Blowfish-CBC as in the paper, AES-CBC, or an
// authenticate-only null suite). Every membership change (join, leave,
// disconnect, partition, merge) re-keys the group before the SecureView
// event announces it as operational; application data is encrypted and
// authenticated under the current group secret.
//
// Quickstart:
//
//	cluster, _ := securespread.NewLocalCluster(3)
//	defer cluster.Stop()
//	alice, _ := securespread.Connect(cluster.Daemons[0], "alice")
//	_ = alice.Join("chat")
//	for ev := range alice.Events() {
//	    switch e := ev.(type) {
//	    case securespread.SecureView:
//	        _ = alice.Multicast("chat", []byte("hello, secure group"))
//	    case securespread.Message:
//	        fmt.Printf("%s: %s\n", e.Sender, e.Data)
//	    }
//	}
package securespread

import (
	"time"

	_ "repro/internal/ckd" // register the centralized key distribution module
	_ "repro/internal/cliques"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/dh"
	"repro/internal/spread"
	"repro/internal/transport"
)

// Key agreement protocol names, selectable per group.
const (
	// ProtoCliques is distributed contributory key agreement (group
	// Diffie-Hellman, the Cliques protocol suite).
	ProtoCliques = "cliques"
	// ProtoCKD is simple centralized key distribution (the paper's
	// Appendix A baseline).
	ProtoCKD = "ckd"
)

// Cipher suite names, selectable per group.
const (
	// SuiteBlowfish is Blowfish-CBC with HMAC-SHA256 (the paper's bulk
	// cipher).
	SuiteBlowfish = crypt.SuiteBlowfish
	// SuiteAES is AES-128-CBC with HMAC-SHA256.
	SuiteAES = crypt.SuiteAES
	// SuiteAESCTR is AES-128-CTR (stream style, no padding) with
	// HMAC-SHA256.
	SuiteAESCTR = crypt.SuiteAESCTR
	// SuiteNull authenticates but does not encrypt (for measuring
	// overhead).
	SuiteNull = crypt.SuiteNull
)

// Event types delivered on a session's Events channel.
type (
	// Event is any secure-layer event.
	Event = core.Event
	// SecureView announces a re-keyed, operational group view.
	SecureView = core.SecureView
	// Message is a decrypted, authenticated group message.
	Message = core.Message
	// SelfLeave confirms this member's own departure.
	SelfLeave = core.SelfLeave
	// Warning reports a dropped message or protocol anomaly.
	Warning = core.Warning
)

// Daemon is a group communication daemon.
type Daemon = spread.Daemon

// DaemonConfig tunes daemon protocol timers; the zero value gives sensible
// defaults.
type DaemonConfig = spread.Config

// Cluster is a set of daemons over an in-memory network with fault
// injection (partitions, crashes, latency) — the testbed substitute.
type Cluster = spread.Cluster

// NewLocalCluster starts n daemons on an in-memory network and waits for
// them to form a common view. It is the quickest way to a working system.
func NewLocalCluster(n int) (*Cluster, error) {
	return spread.NewCluster(n, spread.Config{})
}

// NewLocalClusterConfig is NewLocalCluster with explicit timers.
func NewLocalClusterConfig(n int, cfg DaemonConfig) (*Cluster, error) {
	return spread.NewCluster(n, cfg)
}

// StartTCPDaemon starts a daemon communicating over real TCP. addrs maps
// every daemon name (including this one) to its host:port listen address,
// like a Spread segment configuration.
func StartTCPDaemon(name string, addrs map[string]string, cfg DaemonConfig) (*Daemon, error) {
	net := transport.NewTCPNetwork(addrs)
	peers := make([]string, 0, len(addrs))
	for peer := range addrs {
		peers = append(peers, peer)
	}
	return spread.NewDaemon(name, peers, net, cfg)
}

// SessionOption configures a session.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	dhBits      int
	autoRefresh time.Duration
}

// WithModulusBits selects the Diffie-Hellman modulus size (512, 768, 1024
// or 2048 bits; default 512, as in the paper's experiments).
func WithModulusBits(bits int) SessionOption {
	return func(c *sessionConfig) { c.dhBits = bits }
}

// WithAutoRefresh rotates the secret of every group this session controls
// once the key is older than the interval (periodic key refresh).
func WithAutoRefresh(interval time.Duration) SessionOption {
	return func(c *sessionConfig) { c.autoRefresh = interval }
}

// Session is one process's secure group connection.
type Session struct {
	conn *core.Conn
}

// Connect attaches a new client session to a daemon in the same process.
func Connect(d *Daemon, user string, opts ...SessionOption) (*Session, error) {
	return connect(opts, func() (spread.Endpoint, error) { return d.Connect(user) })
}

// ConnectRemote attaches a session to a daemon over TCP. The daemon must
// be serving clients (Daemon.ListenClients / spreadd -client-listen).
func ConnectRemote(addr, user string, opts ...SessionOption) (*Session, error) {
	return connect(opts, func() (spread.Endpoint, error) { return spread.RemoteConnect(addr, user) })
}

func connect(opts []SessionOption, dial func() (spread.Endpoint, error)) (*Session, error) {
	cfg := sessionConfig{dhBits: 512}
	for _, o := range opts {
		o(&cfg)
	}
	group, err := dh.GroupForBits(cfg.dhBits)
	if err != nil {
		return nil, err
	}
	client, err := dial()
	if err != nil {
		return nil, err
	}
	copts := []core.Option{core.WithDHGroup(group)}
	if cfg.autoRefresh > 0 {
		copts = append(copts, core.WithAutoRefresh(cfg.autoRefresh))
	}
	return &Session{conn: core.New(client, copts...)}, nil
}

// Name returns the session's unique member name ("user#daemon").
func (s *Session) Name() string { return s.conn.Name() }

// Events returns the secure event stream. The application must consume it.
func (s *Session) Events() <-chan Event { return s.conn.Events() }

// Join joins a secure group with the default configuration (Cliques key
// agreement, Blowfish-CBC). Use JoinWith to choose modules.
func (s *Session) Join(group string) error {
	return s.conn.Join(group, ProtoCliques, SuiteBlowfish)
}

// JoinWith joins a secure group with an explicit key agreement protocol
// and cipher suite — the paper's run-time module selection.
func (s *Session) JoinWith(group, protocol, suite string) error {
	return s.conn.Join(group, protocol, suite)
}

// Leave departs from a group voluntarily; a SelfLeave event confirms it.
func (s *Session) Leave(group string) error { return s.conn.Leave(group) }

// Multicast encrypts data under the group's current secret and sends it to
// all members.
func (s *Session) Multicast(group string, data []byte) error {
	return s.conn.Multicast(group, data)
}

// KeyRefresh requests a new group secret without a membership change.
func (s *Session) KeyRefresh(group string) error { return s.conn.KeyRefresh(group) }

// GroupState reports the secured membership and key epoch of a group.
func (s *Session) GroupState(group string) (members []string, epoch uint64, secured bool) {
	return s.conn.GroupState(group)
}

// Receive blocks for the next event, up to timeout (zero = forever).
func (s *Session) Receive(timeout time.Duration) (Event, bool) {
	if timeout <= 0 {
		ev, ok := <-s.conn.Events()
		return ev, ok
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case ev, ok := <-s.conn.Events():
		return ev, ok
	case <-t.C:
		return nil, false
	}
}

// Disconnect closes the session; remaining group members observe a
// disconnect membership change and re-key.
func (s *Session) Disconnect() error { return s.conn.Disconnect() }
