package securespread

import (
	"testing"
	"time"

	"repro/internal/spread"
	"repro/internal/transport"
	"repro/internal/transport/faultnet"
)

// TestSealedRoundTripOverTCPWithReset is the public-API smoke promoted to
// real sockets: a 3-daemon cluster over live TCP (through the faultnet
// relay), two secure sessions, and a sealed round trip — then one injected
// link reset that kills the inter-daemon sockets mid-stream, and a second
// sealed round trip that must still arrive intact. The transport's redial
// supervisor and the daemon layer's retransmission absorb the reset; the
// application sees nothing but decrypted, authenticated messages.
func TestSealedRoundTripOverTCPWithReset(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster test in -short mode")
	}
	names := []string{"d1", "d2", "d3"}
	addrs := map[string]string{}
	for _, n := range names {
		addrs[n] = "127.0.0.1:0"
	}
	tn := transport.NewTCPNetwork(addrs)
	tn.SetTuning(transport.TCPTuning{
		DialTimeout:  500 * time.Millisecond,
		WriteTimeout: time.Second,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		DownAfter:    3,
	})
	fn, err := faultnet.NewTCPProxy(tn, names, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Close()

	cfg := DaemonConfig{Heartbeat: 15 * time.Millisecond, SuspectAfter: 400 * time.Millisecond}
	var daemons []*Daemon
	for _, n := range names {
		d, err := spread.NewDaemon(n, names, fn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		daemons = append(daemons, d)
	}

	alice, err := Connect(daemons[0], "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Disconnect()
	bob, err := Connect(daemons[2], "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Disconnect()

	if err := alice.JoinWith("chat", ProtoCliques, SuiteBlowfish); err != nil {
		t.Fatal(err)
	}
	if err := bob.JoinWith("chat", ProtoCliques, SuiteBlowfish); err != nil {
		t.Fatal(err)
	}
	waitView(t, alice, "chat", 2)
	waitView(t, bob, "chat", 2)

	// Round trip 1: the baseline — the sealed path works over live TCP.
	if err := alice.Multicast("chat", []byte("before the reset")); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, bob, "chat"); m.Sender != alice.Name() || string(m.Data) != "before the reset" {
		t.Fatalf("round trip 1: got %q from %s", m.Data, m.Sender)
	}

	// Kill the live sockets between alice's and bob's daemons (both
	// directions), plus the d1<->d2 link for good measure: every
	// supervisor on those links sees a hard write/read error and must
	// re-dial through its backoff schedule.
	fn.Reset("d1", "d3")
	fn.Reset("d1", "d2")

	// Round trip 2: a message sealed under the same group key must
	// survive the reset — the redial supervisor restores the links and
	// the daemon layer recovers anything the kernel swallowed.
	if err := alice.Multicast("chat", []byte("after the reset")); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, bob, "chat"); m.Sender != alice.Name() || string(m.Data) != "after the reset" {
		t.Fatalf("round trip 2: got %q from %s", m.Data, m.Sender)
	}

	// The membership must not have churned: a link reset is a transport
	// fault, not a member failure.
	if members, _, secured := bob.GroupState("chat"); !secured || len(members) != 2 {
		t.Fatalf("group state after reset: members=%v secured=%v", members, secured)
	}
}
