package securespread_test

import (
	"fmt"
	"time"

	"repro/securespread"
)

// Example demonstrates the canonical usage pattern: start (or connect to)
// a daemon cluster, join a secure group, wait for the SecureView, and
// exchange encrypted messages. It has no deterministic output because
// membership timing varies; the assertions live in the package tests.
func Example() {
	cluster, err := securespread.NewLocalCluster(3)
	if err != nil {
		fmt.Println("cluster:", err)
		return
	}
	defer cluster.Stop()

	alice, err := securespread.Connect(cluster.Daemons[0], "alice")
	if err != nil {
		fmt.Println("connect:", err)
		return
	}
	if err := alice.JoinWith("chat", securespread.ProtoCliques, securespread.SuiteBlowfish); err != nil {
		fmt.Println("join:", err)
		return
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := alice.Receive(time.Until(deadline))
		if !ok {
			break
		}
		switch e := ev.(type) {
		case securespread.SecureView:
			// The group re-keyed; it is now safe to talk.
			_ = alice.Multicast("chat", []byte("hello, secure group"))
		case securespread.Message:
			_ = e // decrypted, authenticated payload from e.Sender
			return
		}
	}
}
