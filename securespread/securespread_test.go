package securespread

import (
	"fmt"
	"slices"
	"testing"
	"time"

	"repro/internal/spread"
)

func newCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewLocalClusterConfig(3, DaemonConfig{
		Heartbeat:    10 * time.Millisecond,
		SuspectAfter: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func waitView(t *testing.T, s *Session, group string, n int) SecureView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if w, isWarn := ev.(Warning); isWarn {
			t.Logf("%s: warning: %v", s.Name(), w.Err)
		}
		if v, isView := ev.(SecureView); isView && v.Group == group && len(v.Members) == n {
			return v
		}
	}
	t.Fatalf("%s: no %d-member secure view for %s", s.Name(), n, group)
	return SecureView{}
}

func waitMsg(t *testing.T, s *Session, group string) Message {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if m, isMsg := ev.(Message); isMsg && m.Group == group {
			return m
		}
	}
	t.Fatalf("%s: no message for %s", s.Name(), group)
	return Message{}
}

func TestPublicAPIFlow(t *testing.T) {
	cluster := newCluster(t)
	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := Connect(cluster.Daemons[i], fmt.Sprintf("user%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		if err := s.Join("room"); err != nil {
			t.Fatal(err)
		}
		for _, ss := range sessions {
			waitView(t, ss, "room", i+1)
		}
	}

	members, epoch, secured := sessions[0].GroupState("room")
	if !secured || epoch == 0 || len(members) != 3 {
		t.Fatalf("group state: %v %d %v", members, epoch, secured)
	}

	if err := sessions[1].Multicast("room", []byte("public api works")); err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		if m := waitMsg(t, s, "room"); string(m.Data) != "public api works" {
			t.Fatalf("got %q", m.Data)
		}
	}

	// Refresh through the facade.
	if err := sessions[0].KeyRefresh("room"); err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		v := waitView(t, s, "room", 3)
		if v.Epoch <= epoch {
			t.Fatalf("refresh did not advance epoch: %d <= %d", v.Epoch, epoch)
		}
	}

	// Disconnect triggers a re-key at the survivors.
	if err := sessions[2].Disconnect(); err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions[:2] {
		v := waitView(t, s, "room", 2)
		if slices.Contains(v.Members, sessions[2].Name()) {
			t.Fatal("disconnected member still present")
		}
	}
}

func TestJoinWithModules(t *testing.T) {
	cluster := newCluster(t)
	a, err := Connect(cluster.Daemons[0], "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Connect(cluster.Daemons[1], "b")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{a, b} {
		if err := s.JoinWith("ops", ProtoCKD, SuiteAES); err != nil {
			t.Fatal(err)
		}
	}
	va := waitView(t, a, "ops", 2)
	waitView(t, b, "ops", 2)
	// CKD controller is the oldest member.
	if va.Controller != a.Name() {
		t.Fatalf("controller = %s, want %s", va.Controller, a.Name())
	}
	if err := b.Multicast("ops", []byte("aes payload")); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, a, "ops"); string(m.Data) != "aes payload" {
		t.Fatalf("got %q", m.Data)
	}
}

func TestModulusOption(t *testing.T) {
	cluster := newCluster(t)
	s, err := Connect(cluster.Daemons[0], "solo", WithModulusBits(1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, s, "g", 1)

	if _, err := Connect(cluster.Daemons[0], "bad", WithModulusBits(123)); err == nil {
		t.Fatal("invalid modulus size accepted")
	}
}

func TestLeaveViaFacade(t *testing.T) {
	cluster := newCluster(t)
	a, _ := Connect(cluster.Daemons[0], "a")
	b, _ := Connect(cluster.Daemons[1], "b")
	for _, s := range []*Session{a, b} {
		if err := s.Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	waitView(t, a, "g", 2)
	waitView(t, b, "g", 2)
	if err := b.Leave("g"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		ev, ok := b.Receive(time.Until(deadline))
		if !ok {
			t.Fatal("b events closed before SelfLeave")
		}
		if _, isLeave := ev.(SelfLeave); isLeave {
			break
		}
	}
	waitView(t, a, "g", 1)
}

func TestStartTCPDaemon(t *testing.T) {
	// A single-daemon TCP deployment: exercises the real transport end
	// to end through the public API.
	addrs := map[string]string{"solo": "127.0.0.1:0"}
	d, err := StartTCPDaemon("solo", addrs, DaemonConfig{Heartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	s, err := Connect(d, "u")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, s, "g", 1)
	if err := s.Multicast("g", []byte("over tcp daemon")); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, s, "g"); string(m.Data) != "over tcp daemon" {
		t.Fatalf("got %q", m.Data)
	}
}

func TestReceiveTimeout(t *testing.T) {
	cluster := newCluster(t)
	s, err := Connect(cluster.Daemons[0], "quiet")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ev, ok := s.Receive(50 * time.Millisecond)
	if ok || ev != nil {
		t.Fatalf("expected timeout, got %+v", ev)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
}

var _ = spread.Config{} // keep the spread import for the alias types

func TestConnectRemoteSecureSession(t *testing.T) {
	cluster := newCluster(t)
	ln, err := cluster.Daemons[0].ListenClients("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	remote, err := ConnectRemote(ln.Addr().String(), "faraway")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Disconnect()
	local, err := Connect(cluster.Daemons[1], "nearby")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{remote, local} {
		if err := s.Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	// The full secure stack (announce, key agreement, encryption) runs
	// across the TCP client hop transparently.
	waitView(t, remote, "g", 2)
	waitView(t, local, "g", 2)
	if err := remote.Multicast("g", []byte("encrypted over two hops")); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, local, "g"); string(m.Data) != "encrypted over two hops" {
		t.Fatalf("got %q", m.Data)
	}
}

func TestComposedModels(t *testing.T) {
	// Client model and daemon model composed: the wire is daemon-keyed
	// AND every group is end-to-end encrypted by the secure layer.
	cluster, err := NewLocalClusterConfig(2, DaemonConfig{
		Heartbeat:    10 * time.Millisecond,
		SuspectAfter: 150 * time.Millisecond,
		DaemonKeying: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)

	a, err := Connect(cluster.Daemons[0], "a", WithAutoRefresh(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Connect(cluster.Daemons[1], "b")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{a, b} {
		if err := s.Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	waitView(t, a, "g", 2)
	waitView(t, b, "g", 2)
	if err := a.Multicast("g", []byte("double-wrapped")); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, b, "g"); string(m.Data) != "double-wrapped" {
		t.Fatalf("got %q", m.Data)
	}
	// The daemon layer reports its own key.
	if cluster.Daemons[0].Stats().DaemonKeyEpoch == 0 {
		t.Fatal("daemon keying inactive")
	}
}
