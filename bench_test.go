// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (Section 6). Each benchmark corresponds to one table
// or figure; cmd/sgcbench prints the same data as formatted tables.
//
// Custom metrics:
//   - exps/op            measured exponentiations (Tables 2-4)
//   - paper-exps/op      the paper's closed-form count for comparison
//   - join-ms, leave-ms  wall / CPU time of one operation (Figures 3-4)
package repro

import (
	"fmt"
	"math/big"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	_ "repro/internal/ckd"
	_ "repro/internal/cliques"
	"repro/internal/crypt"
	"repro/internal/dh"
)

var protocols = []string{"cliques", "ckd"}

// BenchmarkTable2JoinExpCounts regenerates Table 2: the per-role
// exponentiation counts of a JOIN for Cliques (controller n+1, new member
// 2n-1) and CKD (controller n+2, new member 4).
func BenchmarkTable2JoinExpCounts(b *testing.B) {
	for _, proto := range protocols {
		for _, n := range []int{4, 8, 16, 32} {
			proto, n := proto, n
			b.Run(fmt.Sprintf("%s/n%d", proto, n), func(b *testing.B) {
				var ctrl, joiner int
				for i := 0; i < b.N; i++ {
					c, err := bench.JoinCounts(proto, n)
					if err != nil {
						b.Fatal(err)
					}
					ctrl = c.Roles[0].Total
					joiner = c.Roles[1].Total
					if c.SerialTotal != c.PaperSerial {
						b.Fatalf("serial %d != paper %d", c.SerialTotal, c.PaperSerial)
					}
				}
				b.ReportMetric(float64(ctrl), "ctrl-exps")
				b.ReportMetric(float64(joiner), "newmember-exps")
			})
		}
	}
}

// BenchmarkTable3LeaveExpCounts regenerates Table 3: the controller's
// exponentiation counts for a LEAVE (Cliques n; CKD n-1, or 3n-5 when the
// controller itself leaves).
func BenchmarkTable3LeaveExpCounts(b *testing.B) {
	for _, proto := range protocols {
		for _, ctrlLeaves := range []bool{false, true} {
			for _, n := range []int{4, 8, 16, 32} {
				proto, ctrlLeaves, n := proto, ctrlLeaves, n
				name := fmt.Sprintf("%s/n%d", proto, n)
				if ctrlLeaves {
					name = fmt.Sprintf("%s/ctrl-leaves/n%d", proto, n)
				}
				b.Run(name, func(b *testing.B) {
					var exps, paper int
					for i := 0; i < b.N; i++ {
						c, err := bench.LeaveCounts(proto, n, ctrlLeaves)
						if err != nil {
							b.Fatal(err)
						}
						exps, paper = c.SerialTotal, c.PaperSerial
						if exps != paper {
							b.Fatalf("serial %d != paper %d", exps, paper)
						}
					}
					b.ReportMetric(float64(exps), "exps")
					b.ReportMetric(float64(paper), "paper-exps")
				})
			}
		}
	}
}

// BenchmarkTable4SerialExp regenerates Table 4: total serial
// exponentiations per operation (Cliques join 3n, leave n, controller
// leave n; CKD join n+6, leave n-1, controller leave 3n-5).
func BenchmarkTable4SerialExp(b *testing.B) {
	for _, proto := range protocols {
		for _, n := range []int{4, 8, 16, 32} {
			proto, n := proto, n
			b.Run(fmt.Sprintf("%s/n%d", proto, n), func(b *testing.B) {
				var row bench.Table4Row
				for i := 0; i < b.N; i++ {
					var err error
					row, err = bench.Table4(proto, n)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(row.Join), "join-exps")
				b.ReportMetric(float64(row.Leave), "leave-exps")
				b.ReportMetric(float64(row.CtrlLeave), "ctrlleave-exps")
			})
		}
	}
}

// BenchmarkFigure3TotalTime regenerates Figure 3: the total wall-clock
// time of one join/leave operation versus group size, on the paper's
// topology (three daemons, two singleton members, the rest co-located),
// including all network and flush-layer overhead. The flush-only series
// isolates the group communication cost.
func BenchmarkFigure3TotalTime(b *testing.B) {
	sizes := []int{3, 5, 10, 15}
	for _, proto := range protocols {
		for _, n := range sizes {
			proto, n := proto, n
			b.Run(fmt.Sprintf("%s/n%d", proto, n), func(b *testing.B) {
				st, err := bench.MeasureStack(proto, n, b.N)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.Join.Milliseconds()), "join-ms")
				b.ReportMetric(float64(st.Leave.Milliseconds()), "leave-ms")
			})
		}
	}
	for _, n := range sizes {
		n := n
		b.Run(fmt.Sprintf("flush-only/n%d", n), func(b *testing.B) {
			st, err := bench.MeasureFlushOnly(n, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(st.Join.Microseconds())/1000, "join-ms")
			b.ReportMetric(float64(st.Leave.Microseconds())/1000, "leave-ms")
		})
	}
}

// BenchmarkFigure4CPUTime regenerates Figure 4: the computation (CPU) time
// of one join and one leave versus group size, for both protocols, along
// with the fraction of it spent in modular exponentiation (the paper
// reports 88% for a 15-member join).
func BenchmarkFigure4CPUTime(b *testing.B) {
	for _, proto := range protocols {
		for _, n := range []int{5, 10, 15, 20, 25, 30} {
			proto, n := proto, n
			b.Run(fmt.Sprintf("%s/n%d", proto, n), func(b *testing.B) {
				c, err := bench.MeasureCPU(proto, n, b.N, dh.Group512)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Join.Microseconds())/1000, "join-ms")
				b.ReportMetric(float64(c.Leave.Microseconds())/1000, "leave-ms")
				b.ReportMetric(c.JoinExpShare*100, "modexp-%")
			})
		}
	}
}

// BenchmarkAblationModulusSize measures the modulus-size sensitivity of
// the paper's dominant cost (one modular exponentiation).
func BenchmarkAblationModulusSize(b *testing.B) {
	for _, bits := range []int{512, 768, 1024} {
		bits := bits
		g, err := dh.GroupForBits(bits)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("bits%d", bits), func(b *testing.B) {
			base := g.PowG(g.MustShare(), nil, "")
			exp := g.MustShare()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Exp(base, exp, nil, "")
			}
		})
	}
}

// BenchmarkAblationCipherThroughput measures sustained encrypted multicast
// throughput for each cipher suite through the full stack — isolating the
// bulk-privacy cost the paper argues is negligible next to key management.
func BenchmarkAblationCipherThroughput(b *testing.B) {
	for _, suite := range []string{"blowfish-cbc", "aes-cbc", "null"} {
		for _, size := range []int{64, 1024, 8192} {
			suite, size := suite, size
			b.Run(fmt.Sprintf("%s/%dB", suite, size), func(b *testing.B) {
				count := b.N
				if count < 50 {
					count = 50
				}
				tp, err := bench.MeasureThroughput(suite, size, count)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(tp.MsgsPerSec, "msgs/s")
				b.ReportMetric(tp.MBPerSec, "MB/s")
			})
		}
	}
}

// BenchmarkPowGFixedBase compares the generic square-and-multiply
// exponentiation of the group generator against the precomputed fixed-base
// comb table PowG now uses on the key-agreement hot path.
func BenchmarkPowGFixedBase(b *testing.B) {
	for _, bits := range []int{512, 1024} {
		g, err := dh.GroupForBits(bits)
		if err != nil {
			b.Fatal(err)
		}
		g.Precompute()
		exp := g.MustShare()
		b.Run(fmt.Sprintf("generic/bits%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Exp(g.G, exp, nil, "")
			}
		})
		b.Run(fmt.Sprintf("fixedbase/bits%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.PowG(exp, nil, "")
			}
		})
	}
}

// BenchmarkExpBatchParallel measures a 16-entry batch of independent
// exponentiations — the shape of a Cliques final broadcast or a CKD key
// distribution for a 16-member group — at pool widths 1 through 8.
func BenchmarkExpBatchParallel(b *testing.B) {
	g, err := dh.GroupForBits(1024)
	if err != nil {
		b.Fatal(err)
	}
	const n = 16
	baseMap := make(map[string]*big.Int, n)
	for i := 0; i < n; i++ {
		baseMap[fmt.Sprintf("m%02d", i)] = g.PowG(g.MustShare(), nil, "")
	}
	exp := g.MustShare()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			prev := dh.SetBatchWorkers(w)
			defer dh.SetBatchWorkers(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.ExpBatch(baseMap, exp, nil, "")
			}
		})
	}
}

// BenchmarkSealOpenPooled measures one Seal+Open round trip per cipher
// suite with the HMAC-state pooling fast path on and off. Allocation
// counts are the interesting metric (b.ReportAllocs).
func BenchmarkSealOpenPooled(b *testing.B) {
	secret := []byte("benchmark-group-secret-material!")
	for _, suite := range []string{"aes-cbc", "aes-ctr"} {
		for _, pooled := range []bool{true, false} {
			s, err := crypt.NewSuite(suite, secret, []byte("bench"))
			if err != nil {
				b.Fatal(err)
			}
			msg := make([]byte, 1024)
			name := fmt.Sprintf("%s/pooled", suite)
			if !pooled {
				name = fmt.Sprintf("%s/unpooled", suite)
			}
			b.Run(name, func(b *testing.B) {
				prev := crypt.SetPooling(pooled)
				defer crypt.SetPooling(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					frame, err := s.Seal(msg)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.Open(frame); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestWriteBenchExpJSON records the exponentiation fast-path performance —
// fixed-base speedup, batch-pool scaling, and Seal/Open cost with pooling
// on and off — to BENCH_exp.json so the perf trajectory is tracked in-repo.
func TestWriteBenchExpJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping perf recording in -short mode")
	}
	rep := bench.ExpReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	for _, bits := range []int{512, 1024} {
		g, err := dh.GroupForBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		rep.PowG = append(rep.PowG, bench.MeasurePowG(g, 40))
	}

	g1024, err := dh.GroupForBits(1024)
	if err != nil {
		t.Fatal(err)
	}
	rep.Batch = bench.MeasureExpBatch(g1024, 16, 10, []int{1, 2, 4, 8})

	secret := []byte("benchmark-group-secret-material!")
	for _, suite := range []string{"aes-cbc", "aes-ctr"} {
		for _, pooled := range []bool{true, false} {
			s, err := crypt.NewSuite(suite, secret, []byte("bench"))
			if err != nil {
				t.Fatal(err)
			}
			msg := make([]byte, 1024)
			prev := crypt.SetPooling(pooled)
			sealAllocs := testing.AllocsPerRun(200, func() {
				if _, err := s.Seal(msg); err != nil {
					t.Fatal(err)
				}
			})
			frame, err := s.Seal(msg)
			if err != nil {
				t.Fatal(err)
			}
			openAllocs := testing.AllocsPerRun(200, func() {
				if _, err := s.Open(frame); err != nil {
					t.Fatal(err)
				}
			})
			const iters = 2000
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := s.Seal(msg); err != nil {
					t.Fatal(err)
				}
			}
			sealNs := time.Since(start).Nanoseconds() / iters
			start = time.Now()
			for i := 0; i < iters; i++ {
				if _, err := s.Open(frame); err != nil {
					t.Fatal(err)
				}
			}
			openNs := time.Since(start).Nanoseconds() / iters
			crypt.SetPooling(prev)

			rep.SealOpen = append(rep.SealOpen, bench.SealOpenPoint{
				Suite:      suite,
				Size:       len(msg),
				Pooled:     pooled,
				SealNs:     sealNs,
				OpenNs:     openNs,
				SealAllocs: sealAllocs,
				OpenAllocs: openAllocs,
			})
		}
	}

	if err := bench.WriteJSON("BENCH_exp.json", rep); err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.PowG {
		t.Logf("PowG %d-bit: generic %v, fixed %v (%.2fx)", p.Bits, p.Generic, p.Fixed, p.Speedup)
	}
	for _, p := range rep.Batch {
		t.Logf("ExpBatch n=%d workers=%d: %v (%.2fx)", p.N, p.Workers, p.Total, p.Scaling)
	}
}

// BenchmarkAblationDaemonVsClientModel contrasts the paper's two security
// models: the client model re-keys the group on every membership change,
// while the daemon model keeps one daemon-group key (re-keyed only on
// daemon membership changes) so a client join/leave costs no key agreement.
func BenchmarkAblationDaemonVsClientModel(b *testing.B) {
	for _, n := range []int{5, 10} {
		n := n
		b.Run(fmt.Sprintf("client-model-cliques/n%d", n), func(b *testing.B) {
			st, err := bench.MeasureStack("cliques", n, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(st.Join.Microseconds())/1000, "join-ms")
			b.ReportMetric(float64(st.Leave.Microseconds())/1000, "leave-ms")
		})
		b.Run(fmt.Sprintf("daemon-model/n%d", n), func(b *testing.B) {
			st, err := bench.DaemonModelTiming(n, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(st.Join.Microseconds())/1000, "join-ms")
			b.ReportMetric(float64(st.Leave.Microseconds())/1000, "leave-ms")
		})
	}
}
