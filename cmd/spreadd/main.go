// Command spreadd runs a standalone group communication daemon over TCP,
// like the Spread daemon the paper's clients connect to. Daemons are
// configured with a static segment file listing every daemon's name and
// listen address, one per line:
//
//	daemon1 10.0.0.1:4803
//	daemon2 10.0.0.2:4803
//	daemon3 10.0.0.3:4803
//
// Start one daemon per machine:
//
//	spreadd -name daemon1 -config segment.conf
//
// The daemon prints view changes as the overlay membership evolves. (The
// in-process client API attaches within the same process; this binary
// exists to exercise and observe the daemon overlay itself.)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	_ "repro/internal/ckd" // register both key agreement modules for -join-proto
	_ "repro/internal/cliques"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/flight"
	"repro/internal/obs/stream"
	"repro/internal/spread"
	"repro/internal/transport"
)

// options is everything run needs from the command line.
type options struct {
	name, config string
	heartbeat    time.Duration
	clientListen string
	debugAddr    string
	joinGroup    string
	joinProto    string
	joinDelay    time.Duration
	flightDir    string
	flightMax    int
}

func main() {
	var opt options
	flag.StringVar(&opt.name, "name", "", "this daemon's name (must appear in the config)")
	flag.StringVar(&opt.config, "config", "", "segment configuration file")
	flag.DurationVar(&opt.heartbeat, "heartbeat", 20*time.Millisecond, "heartbeat interval")
	flag.StringVar(&opt.clientListen, "client-listen", "", "optional host:port to serve remote clients on")
	flag.StringVar(&opt.debugAddr, "debug-addr", "", "optional host:port for the introspection endpoints (/metrics, /trace, /events, /debug/pprof)")
	flag.StringVar(&opt.joinGroup, "join-group", "", "optional: run an embedded secure client that joins this group (its rekeys land in this daemon's /trace and /metrics)")
	flag.StringVar(&opt.joinProto, "join-proto", "cliques", "embedded client key agreement protocol: cliques|ckd")
	flag.DurationVar(&opt.joinDelay, "join-delay", 0, "wait this long after the full daemon view before the embedded client joins (stagger across daemons to get join-classified rekeys)")
	flag.StringVar(&opt.flightDir, "flight-dir", "", "optional directory for flight-recorder bundles (anomaly watchdog + SIGQUIT dumps)")
	flag.IntVar(&opt.flightMax, "flight-max", flight.DefaultMaxBundles, "retention cap on flight bundles")
	flag.Parse()

	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(opt options) error {
	name, config, heartbeat := opt.name, opt.config, opt.heartbeat
	clientListen, debugAddr := opt.clientListen, opt.debugAddr
	joinGroup, joinProto, joinDelay := opt.joinGroup, opt.joinProto, opt.joinDelay
	if name == "" || config == "" {
		return fmt.Errorf("both -name and -config are required")
	}
	addrs, err := parseConfig(config)
	if err != nil {
		return err
	}
	if _, ok := addrs[name]; !ok {
		return fmt.Errorf("daemon %q not in configuration %s", name, config)
	}

	nw := transport.NewTCPNetwork(addrs)
	peers := make([]string, 0, len(addrs))
	for p := range addrs {
		peers = append(peers, p)
	}
	d, err := spread.NewDaemon(name, peers, nw, spread.Config{Heartbeat: heartbeat})
	if err != nil {
		return err
	}
	log.Printf("daemon %s listening on %s with peers %v", name, addrs[name], peers)
	if clientListen != "" {
		ln, err := d.ListenClients(clientListen)
		if err != nil {
			d.Stop()
			return err
		}
		log.Printf("daemon %s serving remote clients on %s", name, ln.Addr())
	}
	var debug *http.Server
	if debugAddr != "" {
		ln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			d.Stop()
			return fmt.Errorf("debug listener: %w", err)
		}
		// /readyz answers from the daemon's own health view; /events is the
		// live stream sgcmon subscribes to.
		mux := obs.Mux(d.Obs(), obs.WithReadiness(d.Readiness))
		stream.Attach(mux, d.Obs(), stream.Options{})
		debug = &http.Server{Handler: mux}
		go func() {
			if err := debug.Serve(ln); err != http.ErrServerClosed {
				log.Printf("debug server: %v", err)
			}
		}()
		log.Printf("daemon %s serving introspection on http://%s/metrics", name, ln.Addr())
	}

	shutdown := make(chan struct{})

	// Flight recorder: a watchdog evaluates the anomaly detectors over
	// this daemon's own ring plus the transport link state, and dumps a
	// diagnostics bundle when an alert first fires; SIGQUIT forces one.
	var flightRec *flight.Recorder
	if opt.flightDir != "" {
		flightRec = flight.New(d.Obs(), flight.Options{
			Dir:        opt.flightDir,
			MaxBundles: opt.flightMax,
			State: func() any {
				return map[string]any{
					"stats": d.Stats(),
					"peers": d.PeerStatus(),
				}
			},
		})
		peerSource := func() []string {
			var out []string
			for _, ps := range d.PeerStatus() {
				if !ps.Up {
					out = append(out, fmt.Sprintf("peer link down: %s (%d frames queued)", ps.Peer, ps.QueueFrames))
				}
			}
			return out
		}
		go flightRec.Watch(2*time.Second, shutdown,
			flight.AnomalySource(d.Obs(), analyze.Options{}), peerSource)

		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for {
				select {
				case <-shutdown:
					return
				case <-quit:
					if dir, err := flightRec.TriggerForce("SIGQUIT", nil); err != nil {
						log.Printf("flight bundle failed: %v", err)
					} else {
						log.Printf("flight bundle written: %s", dir)
					}
				}
			}
		}()
		log.Printf("daemon %s flight recorder armed: %s (max %d bundles)", name, opt.flightDir, opt.flightMax)
	}
	var clients sync.WaitGroup
	if joinGroup != "" {
		clients.Add(1)
		go func() {
			defer clients.Done()
			embeddedClient(d, len(peers), joinGroup, joinProto, joinDelay, shutdown)
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	// Log view changes until interrupted.
	last := spread.ViewID{}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			// Graceful shutdown, in dependency order: the embedded client
			// disconnects (its leave propagates a clean membership change),
			// the introspection server drains, and only then does the
			// daemon stop — so peers observe an orderly departure rather
			// than a crash. A second signal aborts immediately.
			log.Printf("daemon %s shutting down", name)
			signal.Stop(stop)
			close(shutdown)
			waitOrSignal(&clients, 3*time.Second)
			if debug != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_ = debug.Shutdown(ctx)
				cancel()
			}
			d.Stop()
			log.Printf("daemon %s stopped", name)
			return nil
		case <-ticker.C:
			v, ok := d.CurrentView()
			if !ok {
				continue
			}
			if v.ID != last {
				last = v.ID
				log.Printf("view %s: members %v", v.ID, v.Members)
			}
		}
	}
}

// waitOrSignal waits for the group, bounded by a timeout so a wedged client
// cannot hold shutdown hostage.
func waitOrSignal(wg *sync.WaitGroup, timeout time.Duration) {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		log.Printf("embedded client did not stop within %v; continuing shutdown", timeout)
	}
}

// embeddedClient runs an in-process secure session on this daemon: it
// waits for the full daemon view, sleeps the configured stagger, joins the
// group, and answers every SecureView with one multicast (so each rekey
// completes its first-send phase). It shares the daemon's observability
// scope, so the client's flush/KGA/key-install events are served by the
// same /trace endpoint sgctrace collects from.
//
// The session auto-reconnects: if the event stream ends for any reason
// other than shutdown (the daemon dropped the session), the client redials
// and rejoins with capped exponential backoff, so a daemon that restarts
// picks its secure session back up without operator action.
func embeddedClient(d *spread.Daemon, fullView int, group, proto string, delay time.Duration, stop <-chan struct{}) {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		v, ok := d.CurrentView()
		if !ok {
			return // daemon stopped
		}
		if len(v.Members) >= fullView {
			break
		}
		if time.Now().After(deadline) {
			log.Printf("embedded client: full %d-daemon view never formed; joining anyway", fullView)
			break
		}
		if !sleepOrStop(50*time.Millisecond, stop) {
			return
		}
	}
	if !sleepOrStop(delay, stop) {
		return
	}

	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		select {
		case <-stop:
			return
		default:
		}
		if attempt > 0 {
			if !sleepOrStop(backoff, stop) {
				return
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
		}
		ep, err := d.Connect("app")
		if err != nil {
			log.Printf("embedded client: connect: %v (retrying)", err)
			continue
		}
		conn := core.New(ep, core.WithObs(d.Obs()))
		if err := conn.Join(group, proto, crypt.SuiteBlowfish); err != nil {
			log.Printf("embedded client: join %s: %v (retrying)", group, err)
			_ = conn.Disconnect()
			continue
		}
		log.Printf("embedded client %s joining group %q (%s)", conn.Name(), group, proto)
		backoff = 100 * time.Millisecond
		if done := clientSession(conn, group, stop); done {
			return
		}
		log.Printf("embedded client: session ended; reconnecting")
	}
}

// clientSession consumes one connection's event stream. It returns true
// when shutdown was requested (the session was disconnected cleanly) and
// false when the stream ended on its own — the caller reconnects.
func clientSession(conn *core.Conn, group string, stop <-chan struct{}) bool {
	for {
		select {
		case <-stop:
			_ = conn.Leave(group)
			_ = conn.Disconnect()
			// Drain so the core loop can finish delivering.
			for range conn.Events() {
			}
			return true
		case ev, ok := <-conn.Events():
			if !ok {
				return false
			}
			switch e := ev.(type) {
			case core.SecureView:
				log.Printf("embedded client: secure view epoch=%d members=%v", e.Epoch, e.Members)
				_ = conn.Multicast(group, []byte("hello from "+conn.Name()))
			case core.Message:
				log.Printf("embedded client: message from %s: %s", e.Sender, e.Data)
			case core.Warning:
				log.Printf("embedded client: warning: %v", e.Err)
			}
		}
	}
}

// sleepOrStop sleeps d, returning false if shutdown arrived first.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

func parseConfig(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	addrs := make(map[string]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"name host:port\", got %q", path, line, text)
		}
		addrs[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%s: no daemons configured", path)
	}
	return addrs, nil
}
