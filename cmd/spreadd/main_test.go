package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "segment.conf")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseConfig(t *testing.T) {
	path := writeConfig(t, `
# comment line
daemon1 10.0.0.1:4803

daemon2 10.0.0.2:4803
daemon3 127.0.0.1:4805
`)
	addrs, err := parseConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"daemon1": "10.0.0.1:4803",
		"daemon2": "10.0.0.2:4803",
		"daemon3": "127.0.0.1:4805",
	}
	if len(addrs) != len(want) {
		t.Fatalf("got %v", addrs)
	}
	for k, v := range want {
		if addrs[k] != v {
			t.Errorf("%s = %q, want %q", k, addrs[k], v)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	if _, err := parseConfig(filepath.Join(t.TempDir(), "missing.conf")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := writeConfig(t, "daemon1 addr extra-field\n")
	if _, err := parseConfig(bad); err == nil {
		t.Fatal("malformed line accepted")
	}
	empty := writeConfig(t, "# only comments\n")
	if _, err := parseConfig(empty); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", 0, ""); err == nil {
		t.Fatal("missing flags accepted")
	}
	cfg := writeConfig(t, "other 127.0.0.1:4803\n")
	if err := run("me", cfg, 0, ""); err == nil {
		t.Fatal("daemon missing from config accepted")
	}
}
