package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/spread"
	"repro/internal/transport"
)

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "segment.conf")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseConfig(t *testing.T) {
	path := writeConfig(t, `
# comment line
daemon1 10.0.0.1:4803

daemon2 10.0.0.2:4803
daemon3 127.0.0.1:4805
`)
	addrs, err := parseConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"daemon1": "10.0.0.1:4803",
		"daemon2": "10.0.0.2:4803",
		"daemon3": "127.0.0.1:4805",
	}
	if len(addrs) != len(want) {
		t.Fatalf("got %v", addrs)
	}
	for k, v := range want {
		if addrs[k] != v {
			t.Errorf("%s = %q, want %q", k, addrs[k], v)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	if _, err := parseConfig(filepath.Join(t.TempDir(), "missing.conf")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := writeConfig(t, "daemon1 addr extra-field\n")
	if _, err := parseConfig(bad); err == nil {
		t.Fatal("malformed line accepted")
	}
	empty := writeConfig(t, "# only comments\n")
	if _, err := parseConfig(empty); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(options{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	cfg := writeConfig(t, "other 127.0.0.1:4803\n")
	if err := run(options{name: "me", config: cfg}); err == nil {
		t.Fatal("daemon missing from config accepted")
	}
}

// TestDebugEndpoints serves a live daemon's introspection mux (what
// -debug-addr exposes) and checks the /metrics, /trace, and /healthz
// payloads are well-formed JSON with the expected fields.
func TestDebugEndpoints(t *testing.T) {
	// Two daemons so the membership protocol actually runs: a singleton's
	// initial self-view is set at construction and installs nothing.
	nw := transport.NewMemNetwork()
	peers := []string{"d1", "d2"}
	var daemons []*spread.Daemon
	for _, name := range peers {
		d, err := spread.NewDaemon(name, peers, nw, spread.Config{Heartbeat: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		daemons = append(daemons, d)
	}

	srv := httptest.NewServer(obs.Mux(daemons[0].Obs()))
	defer srv.Close()

	// Let the pair agree on a two-member view so the metrics and trace
	// are non-trivial.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok := daemons[0].CurrentView()
		if ok && len(v.Members) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemons never agreed on a two-member view")
		}
		time.Sleep(5 * time.Millisecond)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var metrics struct {
		Node    string `json:"node"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(get("/metrics"), &metrics); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if metrics.Node != "d1" {
		t.Errorf("/metrics node = %q, want d1", metrics.Node)
	}
	if metrics.Metrics.Counters["spread_views_installed"] == 0 {
		t.Errorf("spread_views_installed = 0 after view install; counters: %v", metrics.Metrics.Counters)
	}

	var trace struct {
		Node   string            `json:"node"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(get("/trace"), &trace); err != nil {
		t.Fatalf("/trace is not JSON: %v", err)
	}
	if len(trace.Events) == 0 {
		t.Error("/trace has no events after a view install")
	}

	if body := get("/healthz"); !json.Valid(body) {
		t.Errorf("/healthz is not JSON: %q", body)
	}
}

// TestEmbeddedClient runs the -join-group client on two in-memory daemons
// with staggered delays and checks the daemons' own trace rings end up
// carrying a fully-phased join rekey — the property the observability
// smoke script asserts over the real TCP cluster.
func TestEmbeddedClient(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test in -short mode")
	}
	nw := transport.NewMemNetwork()
	peers := []string{"d1", "d2"}
	var daemons []*spread.Daemon
	for _, name := range peers {
		d, err := spread.NewDaemon(name, peers, nw, spread.Config{Heartbeat: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		daemons = append(daemons, d)
	}
	stop := make(chan struct{})
	defer close(stop)
	go embeddedClient(daemons[0], 2, "smoke", "cliques", 0, stop)
	go embeddedClient(daemons[1], 2, "smoke", "cliques", 300*time.Millisecond, stop)

	deadline := time.Now().Add(30 * time.Second)
	for {
		var traces [][]obs.Event
		for _, d := range daemons {
			traces = append(traces, d.Obs().Rec.Events())
		}
		rep := analyze.Analyze(obs.Merge(traces...), analyze.Options{Group: "smoke"})
		for _, rk := range rep.Rekeys {
			if rk.Class == "join" && rk.FullyPhased() {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no fully-phased join rekey in the daemons' traces; rekeys: %+v", rep.Rekeys)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestEmbeddedClientGracefulStop checks the shutdown side of the reconnect
// loop: closing the stop channel makes the embedded client leave, disconnect,
// and return promptly instead of looping on reconnect forever.
func TestEmbeddedClientGracefulStop(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test in -short mode")
	}
	nw := transport.NewMemNetwork()
	peers := []string{"d1", "d2"}
	var daemons []*spread.Daemon
	for _, name := range peers {
		d, err := spread.NewDaemon(name, peers, nw, spread.Config{Heartbeat: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		daemons = append(daemons, d)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		embeddedClient(daemons[0], 2, "smoke", "cliques", 0, stop)
		close(done)
	}()

	// Let the client establish its secure session before pulling the plug.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if n := daemons[0].Stats().Clients; n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("embedded client never connected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("embedded client did not stop after shutdown signal")
	}
}
