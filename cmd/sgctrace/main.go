// Command sgctrace is the offline companion of the live introspection
// endpoints: it scrapes causal traces and metrics from a running cluster,
// decomposes every rekey into its phases across nodes, flags anomalies,
// and gates benchmark files against a baseline.
//
// Usage:
//
//	sgctrace collect -out bundle.json [-group G] d01=http://host:port ...
//	sgctrace report [-json] [-group G] [-stall 2s] FILE|BUNDLE_DIR
//	sgctrace diff [-ratio 10] [-floor 50] [-count-tol 0] OLD.json NEW.json
//
// collect fetches /trace and /metrics from each named debug endpoint
// (spreadd -debug-addr) into one snapshot bundle; an unreachable node is
// recorded as unhealthy rather than failing the collection. report accepts
// a bundle, a flight-recorder bundle directory (it reads the bundle.json
// inside and prints the trigger reason and alerts), a raw /trace payload
// (or bare event array), or a BENCH_rekey.json sweep file, and prints the
// per-class/per-size phase decomposition, the correlated rekeys, and any
// anomalies. diff compares two bench files of
// the same kind — BENCH_rekey.json rekey sweeps or BENCH_wire.json wire
// sweeps — and exits nonzero when a tracked metric regressed: deterministic
// counts (exponentiations, encoded frame sizes) exactly, timings by a
// generous ratio with noise floors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/causal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "collect":
		err = cmdCollect(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "crit":
		err = cmdCrit(os.Args[2:])
	case "diff":
		var regs []analyze.Regression
		regs, err = cmdDiff(os.Args[2:], os.Stdout)
		if err == nil && len(regs) > 0 {
			os.Exit(1)
		}
	case "-h", "-help", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "sgctrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgctrace:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sgctrace collect -out bundle.json [-group G] name=http://addr ...
  sgctrace report [-json] [-group G] [-stall 2s] FILE|BUNDLE_DIR
  sgctrace crit [-json] [-group G] FILE|BUNDLE_DIR
  sgctrace diff [-ratio 10] [-floor 50] [-count-tol 0] OLD.json NEW.json`)
}

// ---- collect ----

type target struct {
	name string
	addr string
}

func parseTargets(args []string) ([]target, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("collect: no endpoints; expected name=http://host:port arguments")
	}
	out := make([]target, 0, len(args))
	for _, a := range args {
		name, addr, ok := strings.Cut(a, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("collect: bad endpoint %q (want name=http://host:port)", a)
		}
		out = append(out, target{name: name, addr: strings.TrimRight(addr, "/")})
	}
	return out, nil
}

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	out := fs.String("out", "", "write the bundle here (default stdout)")
	group := fs.String("group", "", "restrict traces to one process group")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets, err := parseTargets(fs.Args())
	if err != nil {
		return err
	}
	cl := &http.Client{Timeout: *timeout}
	b := collect(cl, targets, *group)
	for _, n := range b.Nodes {
		if n.Healthy {
			fmt.Fprintf(os.Stderr, "collected %s: %d events (of %d recorded)\n",
				n.Node, len(n.Events), n.TotalRecorded)
		} else {
			fmt.Fprintf(os.Stderr, "node %s unreachable: %s\n", n.Node, n.Error)
		}
	}
	if b.Healthy() == 0 {
		return fmt.Errorf("collect: no node answered")
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// collect scrapes every target's /metrics and /trace into one bundle. A
// node that fails either fetch is kept with Healthy=false and the error —
// partial clusters (a crashed daemon mid-experiment) must still collect.
func collect(cl *http.Client, targets []target, group string) *analyze.Bundle {
	b := &analyze.Bundle{CollectedAt: time.Now(), Group: group}
	for _, t := range targets {
		ns := analyze.NodeSnapshot{Node: t.name, Addr: t.addr}

		var mp obs.MetricsPayload
		if err := fetchJSON(cl, t.addr+"/metrics", &mp); err != nil {
			ns.Error = err.Error()
		} else {
			ns.Metrics, ns.Process = mp.Metrics, mp.Process
			if mp.Node != "" {
				ns.Node = mp.Node
			}

			var tp obs.TracePayload
			traceURL := t.addr + "/trace"
			if group != "" {
				traceURL += "?group=" + group
			}
			if err := fetchJSON(cl, traceURL, &tp); err != nil {
				ns.Error = err.Error()
			} else {
				ns.TotalRecorded, ns.Events = tp.Total, tp.Events
				ns.Healthy = true
			}
		}
		b.Nodes = append(b.Nodes, ns)
	}
	return b
}

func fetchJSON(cl *http.Client, url string, v any) error {
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// ---- report ----

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	group := fs.String("group", "", "restrict the analysis to one process group")
	stall := fs.Duration("stall", analyze.DefaultStallThreshold, "idle time before an open rekey counts as stalled")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("report: want exactly one input file")
	}
	return report(os.Stdout, fs.Arg(0), *jsonOut, analyze.Options{Group: *group, StallThreshold: *stall})
}

func report(w io.Writer, path string, jsonOut bool, opt analyze.Options) error {
	in, err := loadInput(path)
	if err != nil {
		return err
	}
	if in.bench != nil {
		return benchReport(w, in.bench, jsonOut)
	}
	if in.bundle != nil && !jsonOut {
		if in.bundle.Reason != "" {
			fmt.Fprintf(w, "flight bundle: %s\n", in.bundle.Reason)
			for _, a := range in.bundle.Alerts {
				fmt.Fprintln(w, "  !", a)
			}
			fmt.Fprintln(w)
		}
		for _, n := range in.bundle.Nodes {
			state := "ok"
			if !n.Healthy {
				state = "UNREACHABLE: " + n.Error
			}
			fmt.Fprintf(w, "node %s (%s): %s\n", n.Node, n.Addr, state)
		}
		fmt.Fprintln(w)
	}
	rep := analyze.Analyze(in.events, opt)
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	rep.WriteText(w)
	return nil
}

func benchReport(w io.Writer, b *analyze.RekeyBench, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(b)
	}
	fmt.Fprintf(w, "== rekey sweep: sizes %v, batch %d ==\n", b.Sizes, b.Batch)
	protos := make([]string, 0, len(b.Protocols))
	for p := range b.Protocols {
		protos = append(protos, p)
	}
	// Two protocols at most; keep "cliques" before "ckd" alphabetical-free.
	if len(protos) == 2 && protos[0] > protos[1] {
		protos[0], protos[1] = protos[1], protos[0]
	}
	for _, p := range protos {
		fmt.Fprintf(w, "\n-- %s --\n", p)
		analyze.WriteSummaryTable(w, b.Protocols[p].Phases)
		if exps := b.Protocols[p].Exps; len(exps) > 0 {
			fmt.Fprintln(w, "serial exponentiations:")
			for _, e := range exps {
				fmt.Fprintf(w, "  n=%-3d join=%d (ctrl %d, new %d)  leave=%d  ctrl-leave=%d\n",
					e.N, e.JoinSerial, e.JoinController, e.JoinNewMember,
					e.LeaveSerial, e.CtrlLeaveSerial)
			}
		}
	}
	return nil
}

// input is one decoded report file, whichever shape it had.
type input struct {
	events []obs.Event
	bundle *analyze.Bundle
	bench  *analyze.RekeyBench
}

// loadInput reads a report input and detects its shape: a collect bundle,
// a flight-recorder bundle directory, a BENCH_rekey.json sweep, a /trace
// payload, or a bare event array.
func loadInput(path string) (*input, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		// A flight-recorder bundle directory: the trace lives in its
		// bundle.json; the profiles alongside are for humans.
		path = filepath.Join(path, "bundle.json")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "[") {
		var evs []obs.Event
		if err := json.Unmarshal(data, &evs); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &input{events: evs}, nil
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case probe["protocols"] != nil:
		var b analyze.RekeyBench
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &input{bench: &b}, nil
	case probe["nodes"] != nil:
		var b analyze.Bundle
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &input{bundle: &b, events: b.MergedEvents()}, nil
	case probe["events"] != nil:
		var tp obs.TracePayload
		if err := json.Unmarshal(data, &tp); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &input{events: tp.Events}, nil
	}
	return nil, fmt.Errorf("%s: unrecognized input (want a bundle, trace payload, event array, or BENCH_rekey.json)", path)
}

// ---- diff ----

func cmdDiff(args []string, w io.Writer) ([]analyze.Regression, error) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	ratio := fs.Float64("ratio", analyze.DefaultTimeRatio, "timing regression threshold (new > old*ratio fails)")
	floor := fs.Float64("floor", analyze.DefaultTimeFloorMs, "ignore timing growth below this many ms (negative disables)")
	countTol := fs.Int("count-tol", 0, "allowed exponentiation-count growth")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 2 {
		return nil, fmt.Errorf("diff: want OLD.json NEW.json")
	}
	return diffFiles(w, fs.Arg(0), fs.Arg(1), analyze.DiffOptions{
		TimeRatio: *ratio, TimeFloorMs: *floor, CountTolerance: *countTol,
	})
}

func diffFiles(w io.Writer, oldPath, newPath string, opt analyze.DiffOptions) ([]analyze.Regression, error) {
	oldB, err := loadBench(oldPath)
	if err != nil {
		return nil, err
	}
	newB, err := loadBench(newPath)
	if err != nil {
		return nil, err
	}
	var regs []analyze.Regression
	switch {
	case oldB.rekey != nil && newB.rekey != nil:
		regs = analyze.DiffBench(oldB.rekey, newB.rekey, opt)
	case oldB.wire != nil && newB.wire != nil:
		regs = analyze.DiffWireBench(oldB.wire, newB.wire, opt)
	case oldB.throughput != nil && newB.throughput != nil:
		// Throughput regresses downward; the diff divides by the ratio and
		// ignores -floor/-count-tol. The flag default is the timing ratio,
		// which is too lax for rates — treat it as unset so the throughput
		// default applies; an explicit -ratio still wins.
		if opt.TimeRatio == analyze.DefaultTimeRatio {
			opt.TimeRatio = 0
		}
		regs = analyze.DiffThroughputBench(oldB.throughput, newB.throughput, opt)
	default:
		return nil, fmt.Errorf("diff: %s and %s are different bench kinds", oldPath, newPath)
	}
	if len(regs) == 0 {
		fmt.Fprintf(w, "ok: no regressions (%s vs %s)\n", newPath, oldPath)
		return nil, nil
	}
	for _, r := range regs {
		fmt.Fprintln(w, r.String())
	}
	fmt.Fprintf(w, "%d regression(s) vs %s\n", len(regs), oldPath)
	return regs, nil
}

// ---- crit ----

// cmdCrit builds the happens-before graph of the trace and prints the
// critical path of every completed rekey plus any causal-order
// violations. It exits nonzero when a violation is found, so it doubles
// as a CI gate.
func cmdCrit(args []string) error {
	fs := flag.NewFlagSet("crit", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit paths and violations as JSON")
	group := fs.String("group", "", "restrict the analysis to one process group")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("crit: want exactly one input file")
	}
	in, err := loadInput(fs.Arg(0))
	if err != nil {
		return err
	}
	if in.bench != nil {
		return fmt.Errorf("crit: %s is a bench sweep, not a trace", fs.Arg(0))
	}
	events := in.events
	if *group != "" {
		kept := events[:0:0]
		for _, e := range events {
			if e.Group == "" || e.Group == *group {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	paths := analyze.CriticalPaths(events)
	violations := causal.Check(events)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Paths      []*analyze.CritPath `json:"paths"`
			Violations []causal.Violation  `json:"violations"`
		}{paths, violations}); err != nil {
			return err
		}
	} else {
		fmt.Printf("== rekey critical paths (%d) ==\n", len(paths))
		for _, p := range paths {
			analyze.FormatCritPath(os.Stdout, p)
		}
		fmt.Printf("\n== causal-order violations (%d) ==\n", len(violations))
		for _, v := range violations {
			fmt.Println(v.String())
		}
		if len(violations) == 0 {
			fmt.Println("none")
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("crit: %d causal-order violation(s)", len(violations))
	}
	return nil
}

// benchFile is any sweep schema the diff gate accepts: the rekey
// phase-decomposition file, the data-plane wire file, or the bulk
// throughput file.
type benchFile struct {
	rekey      *analyze.RekeyBench
	wire       *analyze.WireBench
	throughput *analyze.ThroughputBench
}

func loadBench(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case probe["protocols"] != nil:
		var b analyze.RekeyBench
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &benchFile{rekey: &b}, nil
	case probe["codec"] != nil || probe["latency"] != nil:
		var b analyze.WireBench
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &benchFile{wire: &b}, nil
	case probe["throughput"] != nil:
		var b analyze.ThroughputBench
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &benchFile{throughput: &b}, nil
	}
	return nil, fmt.Errorf("%s: not a BENCH_rekey.json, BENCH_wire.json or BENCH_throughput.json sweep file", path)
}
