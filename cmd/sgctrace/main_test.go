package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// fakeDaemon serves one node's debug endpoints from a real scope with a
// synthetic fully-phased join rekey in its ring.
func fakeDaemon(t *testing.T, node string) *httptest.Server {
	t.Helper()
	sc := obs.NewScope(node, "test")
	sc.Reg.Counter("wire_msgs{send}").Add(3)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	at := func(ms int, comp, kind string, mut func(*obs.Event)) {
		ev := obs.Event{T: base.Add(time.Duration(ms) * time.Millisecond),
			Comp: comp, Kind: kind, Group: "chat"}
		if mut != nil {
			mut(&ev)
		}
		sc.Record(ev)
	}
	view := func(v string) func(*obs.Event) {
		return func(e *obs.Event) { e.View = v }
	}
	at(0, "flush", "flush-request", view("v7"))
	at(10, "flush", "vs-view-install", func(e *obs.Event) {
		e.View = "v7"
		e.Detail = "members=[a#d1 b#d1] round=1"
	})
	at(14, "core", "plan", func(e *obs.Event) {
		e.View = "v7"
		e.Detail = "class=join ops=[join]"
	})
	at(20, "cliques", "kga-state", func(e *obs.Event) {
		e.View = "v7"
		e.Detail = "round=1 collecting->distributing"
	})
	at(34, "core", "key-install", func(e *obs.Event) {
		e.View = "v7"
		e.KeyEpoch = 3
		e.Detail = "class=join members=[a#d1 b#d1] controller=a#d1"
	})
	at(40, "core", "first-send", func(e *obs.Event) { e.KeyEpoch = 3 })
	return httptest.NewServer(obs.Mux(sc))
}

// TestCollectAgainstFakeDaemons runs collect against two live fake daemons
// plus one unreachable endpoint: the bundle must carry both healthy nodes'
// traces and retain the dead node as unhealthy, and the report over the
// bundle must show the correlated join rekey.
func TestCollectAgainstFakeDaemons(t *testing.T) {
	d1 := fakeDaemon(t, "a#d1")
	defer d1.Close()
	d2 := fakeDaemon(t, "b#d1")
	defer d2.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // now refuses connections

	cl := &http.Client{Timeout: 2 * time.Second}
	b := collect(cl, []target{
		{name: "d1", addr: d1.URL},
		{name: "d2", addr: d2.URL},
		{name: "d3", addr: dead.URL},
	}, "chat")

	if got := b.Healthy(); got != 2 {
		t.Fatalf("healthy nodes = %d, want 2", got)
	}
	if len(b.Nodes) != 3 {
		t.Fatalf("bundle has %d nodes, want 3 (unreachable node must be retained)", len(b.Nodes))
	}
	deadNode := b.Nodes[2]
	if deadNode.Healthy || deadNode.Error == "" {
		t.Fatalf("unreachable node not marked: %+v", deadNode)
	}
	// Node names come from the daemon's own payload when it answers.
	if b.Nodes[0].Node != "a#d1" || b.Nodes[1].Node != "b#d1" {
		t.Errorf("node names = %q, %q; want payload names", b.Nodes[0].Node, b.Nodes[1].Node)
	}
	if b.Nodes[0].Metrics.Counters["wire_msgs{send}"] != 3 {
		t.Errorf("metrics not collected: %+v", b.Nodes[0].Metrics.Counters)
	}
	if len(b.Nodes[0].Events) != 6 {
		t.Errorf("node events = %d, want 6", len(b.Nodes[0].Events))
	}

	// Round-trip the bundle through a file and the report path.
	path := filepath.Join(t.TempDir(), "bundle.json")
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := report(&sb, path, false, analyze.Options{Group: "chat"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"node d3", "UNREACHABLE",
		"class=join", "size=2", "nodes=2", "fully-phased=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// JSON mode must emit a decodable analyze.Report with the same rekey.
	sb.Reset()
	if err := report(&sb, path, true, analyze.Options{Group: "chat"}); err != nil {
		t.Fatal(err)
	}
	var rep analyze.Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("report -json not decodable: %v", err)
	}
	if len(rep.Rekeys) != 1 || len(rep.Rekeys[0].Nodes) != 2 {
		t.Fatalf("JSON report rekeys = %+v", rep.Rekeys)
	}
}

// TestCollectAllUnreachable checks the CLI-level failure when nothing
// answers (a bundle of only unhealthy nodes is useless).
func TestCollectAllUnreachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	cl := &http.Client{Timeout: time.Second}
	b := collect(cl, []target{{name: "d1", addr: dead.URL}}, "")
	if b.Healthy() != 0 || len(b.Nodes) != 1 || b.Nodes[0].Error == "" {
		t.Fatalf("bundle = %+v", b)
	}
}

func TestParseTargets(t *testing.T) {
	if _, err := parseTargets(nil); err == nil {
		t.Error("empty target list accepted")
	}
	if _, err := parseTargets([]string{"http://x"}); err == nil {
		t.Error("nameless target accepted")
	}
	ts, err := parseTargets([]string{"d1=http://x:1/", "d2=http://y:2"})
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].addr != "http://x:1" || ts[1].name != "d2" {
		t.Errorf("parsed targets = %+v", ts)
	}
}

func benchFixture(totalMs float64, joinSerial int) *analyze.RekeyBench {
	return &analyze.RekeyBench{
		Sizes: []int{2, 4},
		Batch: 3,
		Protocols: map[string]*analyze.ProtoBench{
			"cliques": {
				Phases: []analyze.ClassSummary{{
					Proto: "cliques", Class: "join", Size: 4, Rekeys: 3, Records: 12,
					TotalP50Ms: totalMs,
					Mean: analyze.Phases{FlushMs: totalMs / 4, KGAMs: totalMs / 2,
						TotalMs: totalMs},
				}},
				Exps: []analyze.ExpRow{{N: 4, JoinController: 5, JoinNewMember: 7,
					JoinSerial: joinSerial, LeaveSerial: 4, CtrlLeaveSerial: 6}},
			},
		},
	}
}

func writeBench(t *testing.T, name string, b *analyze.RekeyBench) string {
	t.Helper()
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffRegressionGate pins the gate semantics: identical files pass, an
// injected order-of-magnitude timing regression or any exponentiation-count
// growth fails.
func TestDiffRegressionGate(t *testing.T) {
	base := writeBench(t, "old.json", benchFixture(20, 12))

	var out strings.Builder
	regs, err := diffFiles(&out, base, writeBench(t, "same.json", benchFixture(20, 12)), analyze.DiffOptions{})
	if err != nil || len(regs) != 0 {
		t.Fatalf("identical files: regs=%v err=%v\n%s", regs, err, out.String())
	}

	// 20ms -> 900ms trips both the x10 ratio and the 50ms absolute floor.
	out.Reset()
	regs, err = diffFiles(&out, base, writeBench(t, "slow.json", benchFixture(900, 12)), analyze.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 || !strings.Contains(out.String(), "REGRESSION rekey/cliques/join/n4/total_p50_ms") {
		t.Fatalf("timing regression not caught: regs=%v\n%s", regs, out.String())
	}

	// One extra serial exponentiation fails exactly, even with calm timings.
	out.Reset()
	regs, err = diffFiles(&out, base, writeBench(t, "exps.json", benchFixture(20, 13)), analyze.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(out.String(), "exp/cliques/n4/join_serial") {
		t.Fatalf("count regression not caught: regs=%v\n%s", regs, out.String())
	}

	// Growth past the ratio but below the absolute floor is jitter on a
	// tiny baseline (4ms -> 45ms), not a regression.
	tiny := writeBench(t, "tiny.json", benchFixture(4, 12))
	out.Reset()
	regs, err = diffFiles(&out, tiny, writeBench(t, "jitter.json", benchFixture(45, 12)), analyze.DiffOptions{})
	if err != nil || len(regs) != 0 {
		t.Fatalf("sub-floor jitter flagged: regs=%v err=%v\n%s", regs, err, out.String())
	}

	// Files sharing no cells at all must fail the gate, not silently pass.
	empty := writeBench(t, "empty.json", &analyze.RekeyBench{
		Protocols: map[string]*analyze.ProtoBench{},
	})
	out.Reset()
	regs, err = diffFiles(&out, base, empty, analyze.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "coverage/comparable_metrics" {
		t.Fatalf("empty comparison passed: %v", regs)
	}
}

func writeThroughputBench(t *testing.T, name string, msgsPerSec float64) string {
	t.Helper()
	b := &analyze.ThroughputBench{Points: []analyze.ThroughputPoint{{
		Proto: "cliques", Suite: "blowfish-cbc", Members: 2,
		MsgSize: 256, Count: 20000, MsgsPerSec: msgsPerSec,
		MBPerSec: msgsPerSec * 256 / (1 << 20),
	}}}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffThroughputGate pins the throughput gate's inverted direction: a
// rate collapse fails, a rate gain or ratio-tolerated dip passes, and a
// sweep sharing no cells fails on coverage.
func TestDiffThroughputGate(t *testing.T) {
	// The flag default ratio stands in for "user did not pass -ratio"; the
	// throughput gate must swap in its own tighter default (3x).
	defOpt := analyze.DiffOptions{TimeRatio: analyze.DefaultTimeRatio,
		TimeFloorMs: analyze.DefaultTimeFloorMs}
	base := writeThroughputBench(t, "old.json", 60000)

	var out strings.Builder
	regs, err := diffFiles(&out, base, writeThroughputBench(t, "faster.json", 90000), defOpt)
	if err != nil || len(regs) != 0 {
		t.Fatalf("faster run flagged: regs=%v err=%v\n%s", regs, err, out.String())
	}

	// Half the rate is within the 3x tolerance (shared machines are noisy).
	out.Reset()
	regs, err = diffFiles(&out, base, writeThroughputBench(t, "dip.json", 30000), defOpt)
	if err != nil || len(regs) != 0 {
		t.Fatalf("tolerated dip flagged: regs=%v err=%v\n%s", regs, err, out.String())
	}

	// A collapse below old/3 fails.
	out.Reset()
	regs, err = diffFiles(&out, base, writeThroughputBench(t, "collapse.json", 9000), defOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(out.String(),
		"REGRESSION throughput/cliques/blowfish-cbc/m2/size256/msgs_per_sec") {
		t.Fatalf("collapse not caught: regs=%v\n%s", regs, out.String())
	}

	// An explicit tighter -ratio wins over the default.
	out.Reset()
	regs, err = diffFiles(&out, base, writeThroughputBench(t, "dip2.json", 30000),
		analyze.DiffOptions{TimeRatio: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("explicit ratio ignored: regs=%v\n%s", regs, out.String())
	}

	// No shared cells: the gate fails on coverage, never silently passes.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"throughput": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	regs, err = diffFiles(&out, base, empty, defOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "coverage/comparable_metrics" {
		t.Fatalf("empty comparison passed: %v", regs)
	}
}

// TestReportOnBenchFile checks report's third input shape: a sweep file
// renders its per-class/per-size tables and exponentiation rows.
func TestReportOnBenchFile(t *testing.T) {
	path := writeBench(t, "bench.json", benchFixture(20, 12))
	var sb strings.Builder
	if err := report(&sb, path, false, analyze.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"-- cliques --", "join", "serial exponentiations", "n=4", "join=12"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench report missing %q:\n%s", want, out)
		}
	}
}
