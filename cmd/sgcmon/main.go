// Command sgcmon is the live fleet monitor: it subscribes to every
// daemon's streaming telemetry endpoint (/events, see internal/obs/stream)
// and folds the per-node trace events and metric deltas into one
// cluster-wide view — sliding-window wire rates, merged rekey-latency
// histograms, view/epoch convergence — evaluating the same anomaly
// detectors `sgctrace report` runs post-hoc, but incrementally, while the
// experiment is still running.
//
// Usage:
//
//	sgcmon [-interval 2s] [-window 60s] [-stall 2s] [-group G] [-json] \
//	       [-once] [-duration 5s] name=http://host:port ...
//
// By default it redraws a text dashboard every interval; -json emits one
// JSON document per evaluation instead. -once waits -duration, evaluates
// a single time, prints, and exits — status 0 when the fleet is healthy
// and converged, 3 when any alert is active (the mon-smoke gate scripts
// against this).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/causal"
	"repro/internal/obs/stream"
)

func main() {
	fs := flag.NewFlagSet("sgcmon", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "dashboard refresh interval")
	window := fs.Duration("window", 60*time.Second, "sliding window for rates and anomaly evaluation")
	stall := fs.Duration("stall", analyze.DefaultStallThreshold, "idle time before an open rekey counts as stalled")
	group := fs.String("group", "", "restrict trace analysis to one process group")
	jsonOut := fs.Bool("json", false, "emit JSON documents instead of the text dashboard")
	once := fs.Bool("once", false, "evaluate once after -duration and exit (3 when alerts are active)")
	duration := fs.Duration("duration", 5*time.Second, "how long -once observes before evaluating")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sgcmon [flags] name=http://host:port ...")
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:])

	targets, err := parseTargets(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgcmon:", err)
		os.Exit(2)
	}

	mon := newMonitor(*window, *stall, *group)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, t := range targets {
		mon.addNode(t.name, t.addr)
		wg.Add(1)
		go func(name, url string) {
			defer wg.Done()
			for m := range stream.Subscribe(ctx, url, stream.SubOptions{Group: *group}) {
				mon.apply(name, m)
			}
		}(t.name, t.addr)
	}

	render := func() *FleetView {
		v := mon.view(time.Now())
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(v)
		} else {
			v.WriteText(os.Stdout)
		}
		return v
	}

	if *once {
		time.Sleep(*duration)
		v := render()
		cancel()
		wg.Wait()
		if len(v.Alerts) > 0 {
			os.Exit(3)
		}
		return
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for range tick.C {
		render()
	}
}

type target struct{ name, addr string }

func parseTargets(args []string) ([]target, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no endpoints; expected name=http://host:port arguments")
	}
	out := make([]target, 0, len(args))
	for _, a := range args {
		name, addr, ok := strings.Cut(a, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad endpoint %q (want name=http://host:port)", a)
		}
		out = append(out, target{name: name, addr: strings.TrimRight(addr, "/")})
	}
	return out, nil
}

// ---- aggregation ----

// timedDelta is one metrics frame's counter increments, stamped at
// receipt, for sliding-window rates.
type timedDelta struct {
	at       time.Time
	counters map[string]int64
}

// nodeState is everything the monitor knows about one daemon's stream.
type nodeState struct {
	name, url string
	connected bool
	lastErr   string

	// totals accumulates the metric deltas back into cumulative counters
	// and histograms (AddInto is the inverse of the stream's DiffFrom).
	totals obs.Snapshot
	deltas []timedDelta
	events []obs.Event

	dropped   uint64 // frames this subscriber lost to queue overflow
	truncated int    // non-initial ring truncations: events lost for good
}

type monitor struct {
	window time.Duration
	stall  time.Duration
	group  string

	mu    sync.Mutex
	nodes map[string]*nodeState
	order []string
	start time.Time
}

func newMonitor(window, stall time.Duration, group string) *monitor {
	return &monitor{
		window: window,
		stall:  stall,
		group:  group,
		nodes:  make(map[string]*nodeState),
		start:  time.Now(),
	}
}

func (m *monitor) addNode(name, url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[name]; ok {
		return
	}
	m.nodes[name] = &nodeState{name: name, url: url, lastErr: "awaiting first frame"}
	m.order = append(m.order, name)
}

// apply folds one stream message into the node's state.
func (m *monitor) apply(name string, msg stream.Msg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.nodes[name]
	if n == nil {
		return
	}
	switch msg.Kind {
	case stream.KindHello:
		n.connected = true
		n.lastErr = ""
	case "disconnect":
		n.connected = false
		if msg.Err != nil {
			n.lastErr = msg.Err.Error()
		}
	case stream.KindTrace:
		n.events = append(n.events, msg.Events...)
	case stream.KindTruncated:
		if msg.Trunc != nil && !msg.Trunc.Initial {
			n.truncated++
		}
	case stream.KindMetrics:
		if msg.Metrics == nil {
			return
		}
		n.totals.AddInto(msg.Metrics.Metrics)
		if len(msg.Metrics.Metrics.Counters) > 0 {
			n.deltas = append(n.deltas, timedDelta{at: time.Now(), counters: msg.Metrics.Metrics.Counters})
		}
		n.dropped = msg.Metrics.Dropped
	}
}

// ---- evaluation ----

// Rate is a per-wire-kind traffic rate over the sliding window.
type Rate struct {
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// NodeView is one daemon's row in the fleet view.
type NodeView struct {
	Name      string `json:"name"`
	Connected bool   `json:"connected"`
	Error     string `json:"error,omitempty"`
	Events    int    `json:"events_in_window"`
	Dropped   uint64 `json:"dropped_frames,omitempty"`
	Truncated int    `json:"truncations,omitempty"`
	View      string `json:"view,omitempty"`
}

// HistView is one merged latency distribution.
type HistView struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// FleetView is one evaluation of the whole fleet: what the dashboard
// renders and what -json emits.
type FleetView struct {
	At        time.Time           `json:"at"`
	WindowSec float64             `json:"window_sec"`
	Nodes     []NodeView          `json:"nodes"`
	SendRates map[string]Rate     `json:"send_rates,omitempty"` // by wire kind
	Rekey     map[string]HistView `json:"rekey_latency,omitempty"`
	Converged bool                `json:"converged"`
	Views     map[string][]string `json:"views,omitempty"`  // daemon view -> nodes
	Epochs    map[string][]string `json:"epochs,omitempty"` // group/epoch -> nodes
	Anomalies []analyze.Anomaly   `json:"anomalies,omitempty"`
	Causal    []causal.Violation  `json:"causal_violations,omitempty"`
	Alerts    []string            `json:"alerts,omitempty"`
}

const (
	sentMsgsPrefix  = "spread_wire_sent_msgs{"
	sentBytesPrefix = "spread_wire_sent_bytes{"
)

// view evaluates the fleet at now: prune windows, compute rates and
// convergence, run the anomaly detectors over the merged window trace.
func (m *monitor) view(now time.Time) *FleetView {
	m.mu.Lock()
	defer m.mu.Unlock()

	cutoff := now.Add(-m.window)
	elapsed := now.Sub(m.start)
	effective := m.window
	if elapsed < effective {
		effective = elapsed
	}
	if effective < time.Second {
		effective = time.Second
	}

	v := &FleetView{
		At:        now,
		WindowSec: effective.Seconds(),
		Converged: true,
		Views:     make(map[string][]string),
		Epochs:    make(map[string][]string),
	}

	rateSums := make(map[string]int64)
	mergedHists := make(map[string]obs.HistogramSnapshot)
	var traces [][]obs.Event
	connected := 0
	for _, name := range m.order {
		n := m.nodes[name]
		n.events = pruneEvents(n.events, cutoff)
		n.deltas = pruneDeltas(n.deltas, cutoff)

		nv := NodeView{Name: n.name, Connected: n.connected, Error: n.lastErr,
			Events: len(n.events), Dropped: n.dropped, Truncated: n.truncated}
		if n.connected {
			connected++
		} else {
			v.Alerts = append(v.Alerts, fmt.Sprintf("node %s unreachable: %s", n.name, n.lastErr))
		}
		if n.dropped > 0 {
			v.Alerts = append(v.Alerts, fmt.Sprintf("node %s stream dropped %d frames (monitor too slow)", n.name, n.dropped))
		}
		if n.truncated > 0 {
			v.Alerts = append(v.Alerts, fmt.Sprintf("node %s trace truncated %d time(s): events lost", n.name, n.truncated))
		}

		for _, d := range n.deltas {
			for cname, inc := range d.counters {
				if strings.HasPrefix(cname, sentMsgsPrefix) || strings.HasPrefix(cname, sentBytesPrefix) {
					rateSums[cname] += inc
				}
			}
		}
		if len(n.events) > 0 {
			traces = append(traces, n.events)
		}

		// Convergence inputs: the node's latest daemon view install and
		// latest key epoch per group.
		var lastView string
		lastEpoch := make(map[string]uint64)
		for _, e := range n.events {
			if e.Comp == "spread" && e.Kind == "view-install" {
				lastView = e.View
			}
			if e.Kind == "key-install" && e.Group != "" {
				lastEpoch[e.Group] = e.KeyEpoch
			}
		}
		nv.View = lastView
		if n.connected && lastView != "" {
			v.Views[lastView] = append(v.Views[lastView], n.name)
		}
		if n.connected {
			for g, ep := range lastEpoch {
				key := fmt.Sprintf("%s/epoch-%d", g, ep)
				v.Epochs[key] = append(v.Epochs[key], n.name)
			}
		}

		// Merged rekey-latency histograms across nodes.
		for hname, h := range n.totals.Histograms {
			if !strings.Contains(hname, "rekey") {
				continue
			}
			if v.Rekey == nil {
				v.Rekey = make(map[string]HistView)
			}
			merged := mergedHists[hname]
			mergedHists[hname] = obs.MergeHistograms(merged, h)
		}

		v.Nodes = append(v.Nodes, nv)
	}

	for hname, h := range mergedHists {
		v.Rekey[hname] = HistView{Count: h.Count, P50Ms: h.Quantile(0.5), P99Ms: h.Quantile(0.99), MaxMs: h.MaxMs}
	}

	if len(rateSums) > 0 {
		v.SendRates = make(map[string]Rate)
	}
	for cname, sum := range rateSums {
		kind := wireKind(cname)
		r := v.SendRates[kind]
		if strings.HasPrefix(cname, sentMsgsPrefix) {
			r.MsgsPerSec = float64(sum) / effective.Seconds()
		} else {
			r.BytesPerSec = float64(sum) / effective.Seconds()
		}
		v.SendRates[kind] = r
	}

	// Convergence: every connected node that has installed a view must
	// agree on it, and view peers must agree on each group's epoch.
	if len(v.Views) > 1 {
		v.Converged = false
		v.Alerts = append(v.Alerts, "daemon views diverge: "+mapSummary(v.Views))
	}
	if div := epochDivergence(v.Epochs); len(div) > 0 {
		v.Converged = false
		for _, d := range div {
			v.Alerts = append(v.Alerts, "key epochs diverge: "+d)
		}
	}
	if connected < len(m.order) {
		v.Converged = false
	}

	// The same detectors sgctrace report runs post-hoc, over the merged
	// in-window trace.
	mergedTrace := obs.Merge(traces...)
	v.Anomalies = analyze.DetectAnomalies(mergedTrace,
		analyze.Options{StallThreshold: m.stall, Group: m.group})
	for _, a := range v.Anomalies {
		v.Alerts = append(v.Alerts, a.String())
	}
	// The causal-order checker runs live too: a delivery outside its
	// view or a key installed ahead of a member's flush is an alert, not
	// just a post-mortem finding. Window pruning evicts old events, which
	// the checker tolerates by skipping assertions it cannot resolve.
	v.Causal = causal.Check(mergedTrace)
	for _, cv := range v.Causal {
		v.Alerts = append(v.Alerts, "causal order: "+cv.String())
	}
	sort.Strings(v.Alerts)
	return v
}

func pruneEvents(events []obs.Event, cutoff time.Time) []obs.Event {
	i := 0
	for i < len(events) && events[i].T.Before(cutoff) {
		i++
	}
	return events[i:]
}

func pruneDeltas(deltas []timedDelta, cutoff time.Time) []timedDelta {
	i := 0
	for i < len(deltas) && deltas[i].at.Before(cutoff) {
		i++
	}
	return deltas[i:]
}

// wireKind extracts the label from "spread_wire_sent_msgs{kind}".
func wireKind(counter string) string {
	i := strings.IndexByte(counter, '{')
	if i < 0 || !strings.HasSuffix(counter, "}") {
		return counter
	}
	return counter[i+1 : len(counter)-1]
}

// epochDivergence reports groups whose connected nodes disagree on the
// key epoch. Keys are "group/epoch-N".
func epochDivergence(epochs map[string][]string) []string {
	byGroup := make(map[string][]string)
	for key, nodes := range epochs {
		g, _, ok := strings.Cut(key, "/epoch-")
		if !ok {
			continue
		}
		byGroup[g] = append(byGroup[g], fmt.Sprintf("%s: %v", key, nodes))
	}
	var out []string
	for g, entries := range byGroup {
		if len(entries) > 1 {
			sort.Strings(entries)
			out = append(out, fmt.Sprintf("group %s (%s)", g, strings.Join(entries, "; ")))
		}
	}
	sort.Strings(out)
	return out
}

func mapSummary(m map[string][]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		sort.Strings(m[k])
		parts = append(parts, fmt.Sprintf("%s: %v", k, m[k]))
	}
	return strings.Join(parts, "; ")
}

// ---- rendering ----

// WriteText renders the dashboard.
func (v *FleetView) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== sgcmon %s (window %.0fs) ==\n", v.At.Format("15:04:05"), v.WindowSec)
	for _, n := range v.Nodes {
		state := "up"
		if !n.Connected {
			state = "DOWN"
			if n.Error != "" {
				state += " (" + n.Error + ")"
			}
		}
		fmt.Fprintf(w, "  %-8s %-6s events=%-5d", n.Name, state, n.Events)
		if n.View != "" {
			fmt.Fprintf(w, " view=%s", n.View)
		}
		if n.Dropped > 0 {
			fmt.Fprintf(w, " dropped=%d", n.Dropped)
		}
		if n.Truncated > 0 {
			fmt.Fprintf(w, " truncated=%d", n.Truncated)
		}
		fmt.Fprintln(w)
	}
	if len(v.SendRates) > 0 {
		kinds := make([]string, 0, len(v.SendRates))
		for k := range v.SendRates {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintln(w, "  wire send rates:")
		for _, k := range kinds {
			r := v.SendRates[k]
			fmt.Fprintf(w, "    %-12s %8.1f msg/s %12.0f B/s\n", k, r.MsgsPerSec, r.BytesPerSec)
		}
	}
	if len(v.Rekey) > 0 {
		names := make([]string, 0, len(v.Rekey))
		for n := range v.Rekey {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "  rekey latency (fleet-merged):")
		for _, n := range names {
			h := v.Rekey[n]
			fmt.Fprintf(w, "    %-28s n=%-5d p50=%.2fms p99=%.2fms max=%.2fms\n",
				n, h.Count, h.P50Ms, h.P99Ms, h.MaxMs)
		}
	}
	if v.Converged {
		fmt.Fprintln(w, "  convergence: OK")
	} else {
		fmt.Fprintln(w, "  convergence: DIVERGED")
	}
	if len(v.Alerts) == 0 {
		fmt.Fprintln(w, "  alerts: none")
	} else {
		fmt.Fprintf(w, "  alerts (%d):\n", len(v.Alerts))
		for _, a := range v.Alerts {
			fmt.Fprintln(w, "    !", a)
		}
	}
}
