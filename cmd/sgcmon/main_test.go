package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/stream"
)

// liveNode is one fake daemon: a scope with a streaming debug mux.
type liveNode struct {
	sc  *obs.Scope
	srv *httptest.Server
}

func startNode(t *testing.T, name string) *liveNode {
	t.Helper()
	sc := obs.NewScope(name, "test")
	mux := obs.Mux(sc)
	stream.Attach(mux, sc, stream.Options{
		PollInterval:    5 * time.Millisecond,
		MetricsInterval: 20 * time.Millisecond,
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &liveNode{sc: sc, srv: srv}
}

// subscribeAll mirrors main(): one Subscribe goroutine per node feeding
// the monitor.
func subscribeAll(t *testing.T, mon *monitor, nodes map[string]*liveNode) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for name, n := range nodes {
		mon.addNode(name, n.srv.URL)
		wg.Add(1)
		go func(name, url string) {
			defer wg.Done()
			for m := range stream.Subscribe(ctx, url, stream.SubOptions{}) {
				mon.apply(name, m)
			}
		}(name, n.srv.URL)
	}
	t.Cleanup(func() { cancel(); wg.Wait() })
}

func waitView(t *testing.T, mon *monitor, pred func(*FleetView) bool) *FleetView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := mon.view(time.Now())
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet view never satisfied predicate; last: %+v", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFleetAggregation(t *testing.T) {
	nodes := map[string]*liveNode{
		"d1": startNode(t, "d1"),
		"d2": startNode(t, "d2"),
	}
	mon := newMonitor(time.Minute, time.Second, "")
	subscribeAll(t, mon, nodes)

	now := time.Now()
	for name, n := range nodes {
		n.sc.Record(obs.Event{Comp: "spread", Kind: "view-install", View: "v1/2", T: now})
		n.sc.Record(obs.Event{Comp: "core", Kind: "key-install", Group: "g", KeyEpoch: 3, View: "v1/2", T: now})
		n.sc.Reg.Counter(obs.LabelName("spread_wire_sent_msgs", "data")).Add(30)
		n.sc.Reg.Counter(obs.LabelName("spread_wire_sent_bytes", "data")).Add(3000)
		h := n.sc.Reg.Histogram(obs.LabelName("rekey_latency", "join"), nil)
		h.Observe(10 * time.Millisecond)
		if name == "d2" {
			h.Observe(20 * time.Millisecond)
		}
	}

	v := waitView(t, mon, func(v *FleetView) bool {
		if len(v.Rekey) == 0 || len(v.SendRates) == 0 {
			return false
		}
		return v.Rekey["rekey_latency{join}"].Count == 3
	})

	if !v.Converged || len(v.Alerts) != 0 {
		t.Fatalf("healthy fleet: converged=%v alerts=%v", v.Converged, v.Alerts)
	}
	if got := v.Views["v1/2"]; len(got) != 2 {
		t.Fatalf("view convergence table = %v", v.Views)
	}
	if got := v.Epochs["g/epoch-3"]; len(got) != 2 {
		t.Fatalf("epoch convergence table = %v", v.Epochs)
	}
	r := v.SendRates["data"]
	if r.MsgsPerSec <= 0 || r.BytesPerSec <= 0 {
		t.Fatalf("send rates = %+v", r)
	}
	// 60 msgs across the fleet over an effective window >= 1s.
	if r.MsgsPerSec > 60 {
		t.Fatalf("msgs/s = %.1f, want <= 60", r.MsgsPerSec)
	}
	h := v.Rekey["rekey_latency{join}"]
	if h.P50Ms <= 0 || h.MaxMs < h.P50Ms {
		t.Fatalf("merged histogram = %+v", h)
	}

	var buf bytes.Buffer
	v.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"d1", "d2", "convergence: OK", "alerts: none", "rekey_latency{join}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

// TestLiveAnomalyMatchesPostHocReport is the acceptance check: the alerts
// sgcmon raises live are the same anomalies `sgctrace report` finds in
// the merged trace after the fact.
func TestLiveAnomalyMatchesPostHocReport(t *testing.T) {
	n := startNode(t, "d1")
	mon := newMonitor(time.Minute, time.Second, "")
	subscribeAll(t, mon, map[string]*liveNode{"d1": n})

	// A wedged rekey: view installed, no key install, trace runs on.
	base := time.Now()
	n.sc.Record(obs.Event{Comp: "flush", Kind: "vs-view-install", Group: "g", View: "v2/3", T: base})
	n.sc.Record(obs.Event{Comp: "spread", Kind: "tick", T: base.Add(10 * time.Second)})

	v := waitView(t, mon, func(v *FleetView) bool { return len(v.Anomalies) > 0 })

	// Post-hoc: the same detectors over the merged events, as sgctrace
	// report would run them on a collected bundle.
	mon.mu.Lock()
	events := append([]obs.Event(nil), mon.nodes["d1"].events...)
	mon.mu.Unlock()
	postHoc := analyze.DetectAnomalies(obs.Merge(events), analyze.Options{StallThreshold: time.Second})

	if !reflect.DeepEqual(v.Anomalies, postHoc) {
		t.Fatalf("live anomalies != post-hoc report:\nlive: %+v\npost: %+v", v.Anomalies, postHoc)
	}
	found := false
	for _, a := range v.Alerts {
		if strings.Contains(a, "no-key-install") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no-key-install never alerted: %v", v.Alerts)
	}
}

func TestDivergenceAndUnreachableAlerts(t *testing.T) {
	mon := newMonitor(time.Minute, time.Second, "")
	mon.addNode("d1", "http://x")
	mon.addNode("d2", "http://y")
	now := time.Now()

	mon.apply("d1", stream.Msg{Kind: stream.KindHello, Hello: &stream.Hello{Node: "d1"}})
	mon.apply("d2", stream.Msg{Kind: stream.KindHello, Hello: &stream.Hello{Node: "d2"}})
	mon.apply("d1", stream.Msg{Kind: stream.KindTrace, Events: []obs.Event{
		{Comp: "spread", Kind: "view-install", View: "v1/2", T: now, Node: "d1", Seq: 1},
		{Comp: "core", Kind: "key-install", Group: "g", KeyEpoch: 2, T: now, Node: "d1", Seq: 2},
	}})
	mon.apply("d2", stream.Msg{Kind: stream.KindTrace, Events: []obs.Event{
		{Comp: "spread", Kind: "view-install", View: "v1/9", T: now, Node: "d2", Seq: 1},
		{Comp: "core", Kind: "key-install", Group: "g", KeyEpoch: 7, T: now, Node: "d2", Seq: 2},
	}})

	v := mon.view(time.Now())
	if v.Converged {
		t.Fatalf("diverged fleet reported converged: %+v", v)
	}
	joined := strings.Join(v.Alerts, "\n")
	if !strings.Contains(joined, "daemon views diverge") || !strings.Contains(joined, "key epochs diverge") {
		t.Fatalf("alerts missing divergence: %v", v.Alerts)
	}

	// A node losing its stream becomes an unreachable alert.
	mon.apply("d2", stream.Msg{Kind: "disconnect"})
	v = mon.view(time.Now())
	if !strings.Contains(strings.Join(v.Alerts, "\n"), "node d2 unreachable") {
		t.Fatalf("disconnect not alerted: %v", v.Alerts)
	}
}

func TestWindowPruning(t *testing.T) {
	mon := newMonitor(50*time.Millisecond, time.Second, "")
	mon.addNode("d1", "http://x")
	mon.apply("d1", stream.Msg{Kind: stream.KindHello, Hello: &stream.Hello{Node: "d1"}})
	mon.apply("d1", stream.Msg{Kind: stream.KindTrace, Events: []obs.Event{
		{Comp: "spread", Kind: "old", T: time.Now().Add(-time.Minute), Seq: 1},
		{Comp: "spread", Kind: "fresh", T: time.Now(), Seq: 2},
	}})
	v := mon.view(time.Now())
	if v.Nodes[0].Events != 1 {
		t.Fatalf("window kept %d events, want only the fresh one", v.Nodes[0].Events)
	}
}

func TestParseTargets(t *testing.T) {
	got, err := parseTargets([]string{"d1=http://a:1", "d2=http://b:2/"})
	if err != nil || len(got) != 2 || got[1].addr != "http://b:2" {
		t.Fatalf("parseTargets = %+v, %v", got, err)
	}
	if _, err := parseTargets(nil); err == nil {
		t.Fatal("no targets must error")
	}
	if _, err := parseTargets([]string{"bogus"}); err == nil {
		t.Fatal("malformed target must error")
	}
}

func TestWireKind(t *testing.T) {
	if got := wireKind("spread_wire_sent_msgs{data}"); got != "data" {
		t.Fatalf("wireKind = %q", got)
	}
	if got := wireKind("plain"); got != "plain" {
		t.Fatalf("wireKind fallback = %q", got)
	}
}
