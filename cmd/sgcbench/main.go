// Command sgcbench regenerates the tables and figures of the paper's
// evaluation section as formatted text, using the same measurement code as
// the root benchmarks.
//
// Usage:
//
//	sgcbench -experiment table2            # Table 2: join exponentiations
//	sgcbench -experiment table3            # Table 3: leave exponentiations
//	sgcbench -experiment table4            # Table 4: serial totals
//	sgcbench -experiment figure3 -nmax 30  # Figure 3: total join/leave time
//	sgcbench -experiment figure4 -nmax 30  # Figure 4: CPU time per op
//	sgcbench -experiment all
//	sgcbench -chaos -seed 4 -events 33     # deterministic fault-schedule run
//	sgcbench -sizes 2..8                   # rekey phase-decomposition sweep
//	sgcbench -wire                         # Figure 5: wire codec + latency/size
//	sgcbench -bulk                         # Figure 4: bulk AGREED throughput
//
// The chaos mode replays a seeded fault schedule against a live cluster and
// checks the five global invariants (see internal/chaos); it exits nonzero
// on any violation, and the same seed always reproduces the same schedule.
//
// The sizes sweep grows a live secure group across the requested sizes
// under both key agreement protocols, decomposes every rekey into its
// phases with the trace analyzer, and writes BENCH_rekey.json — the input
// of the `sgctrace diff` regression gate (`make bench-diff`).
//
// The wire mode measures the data plane: per-kind encoded frame sizes and
// encode/decode times for the binary wire codec against the legacy gob
// path, plus a secured message-latency-vs-size sweep (1B..100KB) over a
// live two-member cluster, reproducing the shape of the paper's Figure 5.
// It writes BENCH_wire.json — the input of the `sgctrace diff` data-plane
// gate (`make bench-wire-diff`).
//
// The bulk mode measures sustained encrypted AGREED multicast throughput
// over the full stack — message-size, cipher-suite and group-size sweeps,
// best of several runs per point — the paper's claim that once the key is
// agreed, bulk data privacy is cheap. It writes BENCH_throughput.json —
// the input of the `sgctrace diff` throughput gate (`make bench-bulk-diff`).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	_ "repro/internal/ckd"
	_ "repro/internal/cliques"
	"repro/internal/dh"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/spread"
	"repro/securespread"
)

// cryptCounters snapshots the process-global cipher throughput counters
// (crypt lives on obs.Default, shared by every in-process client).
func cryptCounters() map[string]int64 {
	out := make(map[string]int64)
	for name, v := range obs.Default.Snapshot().Counters {
		if strings.HasPrefix(name, "crypt_") {
			out[name] = v
		}
	}
	return out
}

func main() {
	experiment := flag.String("experiment", "all", "table2|table3|table4|figure3|figure4|chaos|all")
	nmax := flag.Int("nmax", 30, "largest group size for the figures")
	step := flag.Int("step", 3, "group size step for the figures")
	batch := flag.Int("batch", 5, "operations averaged per data point")
	bits := flag.Int("bits", 512, "DH modulus size for figure 4 (512 as in the paper; 2048 calibrates the per-exponentiation cost to the paper's testbed)")
	chaosMode := flag.Bool("chaos", false, "shorthand for -experiment chaos")
	seed := flag.Uint64("seed", 1, "chaos schedule seed")
	events := flag.Int("events", 33, "chaos schedule length")
	proto := flag.String("proto", "both", "chaos/sweep key agreement protocol: cliques|ckd|both")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "chaos mode: write the observability report here (empty disables)")
	sizesSpec := flag.String("sizes", "", `rekey sweep sizes ("2..8" or "2,4,8"); runs the sweep experiment`)
	rekeyOut := flag.String("rekey-out", "BENCH_rekey.json", "sweep mode: write the phase-decomposition file here (empty disables)")
	wireMode := flag.Bool("wire", false, "data-plane sweep: wire-codec microbench + message-latency-vs-size over the live stack")
	wireOut := flag.String("wire-out", "BENCH_wire.json", "wire mode: write the data-plane report here (empty disables)")
	wireCount := flag.Int("wire-count", 40, "wire mode: messages measured per payload size")
	bulkMode := flag.Bool("bulk", false, "bulk-throughput sweep: sustained AGREED multicast rate over message sizes, suites and group sizes")
	bulkOut := flag.String("bulk-out", "BENCH_throughput.json", "bulk mode: write the throughput report here (empty disables)")
	bulkCount := flag.Int("bulk-count", 20000, "bulk mode: messages per sweep point")
	flag.Parse()

	exp := *experiment
	if *chaosMode {
		exp = "chaos"
	}
	if *sizesSpec != "" {
		exp = "sweep"
	}
	if *wireMode {
		exp = "wire"
	}
	if exp == "wire" {
		if err := wireExperiment(*wireOut, *wireCount); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *bulkMode {
		if err := bulkExperiment(*bulkOut, *bulkCount); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(exp, *nmax, *step, *batch, *bits, *seed, *events, *proto, *obsOut, *sizesSpec, *rekeyOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(experiment string, nmax, step, batch, bits int, seed uint64, events int, proto, obsOut, sizesSpec, rekeyOut string) error {
	switch experiment {
	case "table2":
		return table2()
	case "table3":
		return table3()
	case "table4":
		return table4()
	case "figure3":
		return figure3(nmax, step, batch)
	case "figure4":
		return figure4(nmax, step, batch, bits)
	case "chaos":
		return chaosExperiment(seed, events, proto, obsOut)
	case "sweep":
		return sweepExperiment(sizesSpec, batch, proto, rekeyOut)
	case "all":
		for _, fn := range []func() error{table2, table3, table4} {
			if err := fn(); err != nil {
				return err
			}
		}
		if err := figure3(nmax, step, batch); err != nil {
			return err
		}
		return figure4(nmax, step, batch, bits)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

// chaosExperiment replays one seeded fault schedule under each requested
// protocol, prints the schedule and invariant trace, and fails on any
// violation. Because the schedule is derived only from the seed, a failure
// reported here reproduces exactly with the same flags (or with
// `go test ./internal/chaos -run TestChaos -chaos.seed=N`).
func chaosExperiment(seed uint64, events int, proto, obsOut string) error {
	protos := []string{"cliques", "ckd"}
	switch proto {
	case "both":
	case "cliques", "ckd":
		protos = []string{proto}
	default:
		return fmt.Errorf("unknown chaos protocol %q", proto)
	}
	report := obsReport{Seed: seed, Events: events, Protocols: make(map[string]protoObs)}
	failed := false
	for _, p := range protos {
		cryptBefore := cryptCounters()
		res, err := chaos.Run(chaos.Config{Seed: seed, Events: events, Proto: p})
		if err != nil {
			return fmt.Errorf("chaos %s: %w", p, err)
		}
		fmt.Printf("== chaos seed=%d proto=%s ==\n", seed, p)
		fmt.Print(res.Schedule.String())
		fmt.Print(res.TraceString())
		for _, v := range res.Violations {
			fmt.Println("VIOLATION:", v)
		}
		if !res.Passed() {
			failed = true
			for _, line := range res.CausalTrace {
				fmt.Println(line)
			}
		}
		fmt.Printf("final epoch %d, %d warnings\n\n", res.FinalEpoch, res.Warnings)
		report.Protocols[p] = summarizeObs(res, cryptBefore)
	}
	if obsOut != "" {
		if err := bench.WriteJSON(obsOut, report); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", obsOut)
	}
	if failed {
		return fmt.Errorf("chaos: invariant violations at seed %d (deterministic: rerun with -chaos -seed %d)", seed, seed)
	}
	return nil
}

// sweepExperiment runs the rekey phase-decomposition sweep: for each
// protocol, grow a live group across the requested sizes (with join/leave
// churn and a key refresh at each), print the analyzer's per-class/
// per-size phase tables, and write the BENCH_rekey.json file that
// `sgctrace diff` gates against a baseline.
func sweepExperiment(sizesSpec string, batch int, proto, rekeyOut string) error {
	sizes, err := bench.ParseSizes(sizesSpec)
	if err != nil {
		return err
	}
	protos := []string{"cliques", "ckd"}
	switch proto {
	case "both":
	case "cliques", "ckd":
		protos = []string{proto}
	default:
		return fmt.Errorf("unknown sweep protocol %q", proto)
	}

	out := analyze.RekeyBench{Sizes: sizes, Batch: batch, Protocols: make(map[string]*analyze.ProtoBench)}
	for _, p := range protos {
		fmt.Printf("== rekey sweep proto=%s sizes=%v batch=%d ==\n", p, sizes, batch)
		res, err := bench.RekeySweep(p, sizes, batch)
		if err != nil {
			return fmt.Errorf("sweep %s: %w", p, err)
		}
		analyze.WriteSummaryTable(os.Stdout, res.Summaries)
		fmt.Println()
		out.Protocols[p] = &analyze.ProtoBench{Phases: res.Summaries, Exps: res.Exps}
	}
	if rekeyOut != "" {
		if err := bench.WriteJSON(rekeyOut, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", rekeyOut)
	}
	return nil
}

// wireExperiment runs the data-plane sweep behind BENCH_wire.json: the
// per-kind wire-codec microbenchmark (binary codec vs legacy gob) and the
// end-to-end message-latency-vs-size sweep over a live 2-member secure
// group, mirroring the paper's message-latency figure.
func wireExperiment(wireOut string, count int) error {
	fmt.Println("== wire codec microbench (per kind, codec vs gob) ==")
	stats := spread.MeasureWireCodec(2000)
	out := analyze.WireBench{}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kind\tbytes codec\tbytes gob\tenc codec\tenc gob\tdec codec\tdec gob")
	for _, s := range stats {
		out.Codec = append(out.Codec, analyze.WireCodecPoint{
			Kind: s.Kind, CodecBytes: s.CodecBytes, GobBytes: s.GobBytes,
			CodecEncNs: s.CodecEncNs, GobEncNs: s.GobEncNs,
			CodecDecNs: s.CodecDecNs, GobDecNs: s.GobDecNs,
		})
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0fns\t%.0fns\t%.0fns\t%.0fns\n",
			s.Kind, s.CodecBytes, s.GobBytes, s.CodecEncNs, s.GobEncNs, s.CodecDecNs, s.GobDecNs)
	}
	tw.Flush()

	// 1 B to 100 KB, the span of the paper's message-latency figure.
	sizes := []int{1, 100, 1000, 10000, 100000}
	suite := securespread.SuiteBlowfish // the paper's bulk cipher
	fmt.Printf("\n== message latency vs size (%s, %d msgs/size) ==\n", suite, count)
	lats, err := bench.MeasureWireLatencySweep(suite, sizes, count)
	if err != nil {
		return fmt.Errorf("wire latency sweep: %w", err)
	}
	fmt.Fprintln(tw, "size\tp50\tmean\tmax")
	for _, l := range lats {
		out.Latency = append(out.Latency, analyze.WireLatencyPoint{
			Suite: l.Suite, Size: l.Size, Count: l.Count,
			P50Ms: l.P50Ms, MeanMs: l.MeanMs, MaxMs: l.MaxMs,
		})
		fmt.Fprintf(tw, "%dB\t%.2fms\t%.2fms\t%.2fms\n", l.Size, l.P50Ms, l.MeanMs, l.MaxMs)
	}
	tw.Flush()

	if wireOut != "" {
		if err := bench.WriteJSON(wireOut, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", wireOut)
	}
	return nil
}

// bulkExperiment runs the bulk-throughput sweep behind
// BENCH_throughput.json: sustained encrypted AGREED multicast rate from
// one member of a secured group, end-to-end (the clock stops when the
// slowest member has received everything), best of bench.BulkReps runs
// per sweep point.
func bulkExperiment(bulkOut string, count int) error {
	fmt.Printf("== bulk AGREED throughput (best of %d runs, %d msgs/point) ==\n", bench.BulkReps, count)
	results, err := bench.RunBulkSweep(bench.DefaultBulkSweep(count))
	if err != nil {
		return err
	}
	out := analyze.ThroughputBench{}
	tw := newTab()
	fmt.Fprintln(tw, "proto\tsuite\tmembers\tsize\tmsgs/s\tMB/s")
	for _, r := range results {
		out.Points = append(out.Points, analyze.ThroughputPoint{
			Proto: r.Proto, Suite: r.Suite, Members: r.Members,
			MsgSize: r.MsgSize, Count: r.Count,
			MsgsPerSec: r.MsgsPerSec, MBPerSec: r.MBPerSec,
		})
		fmt.Fprintf(tw, "%s\t%s\t%d\t%dB\t%.0f\t%.2f\n",
			r.Proto, r.Suite, r.Members, r.MsgSize, r.MsgsPerSec, r.MBPerSec)
	}
	tw.Flush()

	if bulkOut != "" {
		if err := bench.WriteJSON(bulkOut, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", bulkOut)
	}
	return nil
}

// obsReport is the BENCH_obs.json schema: per-protocol rekey latency
// histograms keyed by membership-event class, flush-round durations, and
// the run-wide counters, all from the chaos run's shared metrics registry.
type obsReport struct {
	Seed      uint64              `json:"seed"`
	Events    int                 `json:"events"`
	Protocols map[string]protoObs `json:"protocols"`
}

type protoObs struct {
	FinalEpoch   uint64                           `json:"final_epoch"`
	Passed       bool                             `json:"passed"`
	RekeyLatency map[string]obs.HistogramSnapshot `json:"rekey_latency_by_class"`
	FlushRound   obs.HistogramSnapshot            `json:"flush_round"`
	Counters     map[string]int64                 `json:"counters"`
	// DHExp is the run-wide modular exponentiation count per operation
	// label, summed over every client (the live counterpart of Tables
	// 2-4).
	DHExp map[string]int64 `json:"dh_exp"`
	// Crypt is this protocol run's share of the process-global cipher
	// throughput counters (crypt_seal_msgs, crypt_open_bytes, ...).
	Crypt map[string]int64 `json:"crypt"`
}

// summarizeObs reshapes a run's metrics snapshot: "rekey_latency{class}"
// histograms become a class-keyed map ("all" is the unlabelled aggregate),
// and per-client exponentiation counters aggregate by label. cryptBefore
// is the process-global counter state before the run, so each protocol is
// attributed only its own Seal/Open traffic.
func summarizeObs(res *chaos.Result, cryptBefore map[string]int64) protoObs {
	out := protoObs{
		FinalEpoch:   res.FinalEpoch,
		Passed:       res.Passed(),
		RekeyLatency: make(map[string]obs.HistogramSnapshot),
		Counters:     res.Metrics.Counters,
		DHExp:        make(map[string]int64),
		Crypt:        make(map[string]int64),
	}
	for _, perClient := range res.Exps {
		for label, n := range perClient {
			out.DHExp[label] += int64(n)
		}
	}
	for name, v := range cryptCounters() {
		out.Crypt[name] = v - cryptBefore[name]
	}
	for name, h := range res.Metrics.Histograms {
		switch {
		case name == "rekey_latency":
			out.RekeyLatency["all"] = h
		case strings.HasPrefix(name, "rekey_latency{") && strings.HasSuffix(name, "}"):
			class := name[len("rekey_latency{") : len(name)-1]
			out.RekeyLatency[class] = h
		case name == "flush_round_duration":
			out.FlushRound = h
		}
	}
	return out
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func table2() error {
	fmt.Println("== Table 2: exponentiations for JOIN (n = group size after join) ==")
	w := newTab()
	fmt.Fprintln(w, "protocol\tn\tcontroller\tpaper\tnew member\tpaper")
	for _, proto := range []string{"cliques", "ckd"} {
		for _, n := range []int{4, 8, 16, 32} {
			c, err := bench.JoinCounts(proto, n)
			if err != nil {
				return err
			}
			var paperCtrl, paperNew int
			if proto == "cliques" {
				paperCtrl, paperNew = n+1, 2*n-1
			} else {
				paperCtrl, paperNew = n+2, 4
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
				proto, n, c.Roles[0].Total, paperCtrl, c.Roles[1].Total, paperNew)
		}
	}
	w.Flush()

	// Per-line-item breakdown at n=8, mirroring the table's rows.
	fmt.Println("\n-- line items at n=8 --")
	for _, proto := range []string{"cliques", "ckd"} {
		c, err := bench.JoinCounts(proto, 8)
		if err != nil {
			return err
		}
		for _, role := range c.Roles {
			fmt.Printf("%s %s:\n", proto, role.Role)
			for op, k := range role.ByOp {
				fmt.Printf("    %-34s %d\n", op, k)
			}
		}
	}
	fmt.Println()
	return nil
}

func table3() error {
	fmt.Println("== Table 3: controller exponentiations for LEAVE (n = group size before leave) ==")
	w := newTab()
	fmt.Fprintln(w, "protocol\tcase\tn\tmeasured\tpaper")
	for _, proto := range []string{"cliques", "ckd"} {
		for _, ctrlLeaves := range []bool{false, true} {
			kind := "member leaves"
			if ctrlLeaves {
				kind = "controller leaves"
			}
			for _, n := range []int{4, 8, 16, 32} {
				c, err := bench.LeaveCounts(proto, n, ctrlLeaves)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\n", proto, kind, n, c.SerialTotal, c.PaperSerial)
			}
		}
	}
	w.Flush()
	fmt.Println()
	return nil
}

func table4() error {
	fmt.Println("== Table 4: total serial exponentiations per operation ==")
	w := newTab()
	fmt.Fprintln(w, "protocol\tn\tjoin\tpaper\tleave\tpaper\tctrl-leave\tpaper")
	for _, proto := range []string{"cliques", "ckd"} {
		for _, n := range []int{4, 8, 16, 32} {
			row, err := bench.Table4(proto, n)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				proto, n, row.Join, row.PaperJoin, row.Leave, row.PaperLeave,
				row.CtrlLeave, row.PaperCtrlLeave)
		}
	}
	w.Flush()
	fmt.Println("(paper: cliques join 3n, leave n; ckd join n+6, leave n-1, controller leave 3n-5)")
	fmt.Println()
	return nil
}

func sizes(nmax, step int) []int {
	var out []int
	for n := 3; n <= nmax; n += step {
		out = append(out, n)
	}
	return out
}

func figure3(nmax, step, batch int) error {
	fmt.Println("== Figure 3: total time of one join/leave vs group size (paper topology, wall clock) ==")
	w := newTab()
	fmt.Fprintln(w, "series\tn\tjoin\tleave")
	for _, proto := range []string{"cliques", "ckd"} {
		for _, n := range sizes(nmax, step) {
			st, err := bench.MeasureStack(proto, n, batch)
			if err != nil {
				return fmt.Errorf("figure3 %s n=%d: %w", proto, n, err)
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\n", proto, n, fmtDur(st.Join), fmtDur(st.Leave))
			w.Flush()
		}
	}
	for _, n := range sizes(nmax, step) {
		st, err := bench.MeasureFlushOnly(n, batch)
		if err != nil {
			return fmt.Errorf("figure3 flush-only n=%d: %w", n, err)
		}
		fmt.Fprintf(w, "flush-only\t%d\t%s\t%s\n", n, fmtDur(st.Join), fmtDur(st.Leave))
		w.Flush()
	}
	fmt.Println()
	return nil
}

func figure4(nmax, step, batch, bits int) error {
	group, err := dh.GroupForBits(bits)
	if err != nil {
		return err
	}
	unit := bench.ModExpCost(group, 16)
	fmt.Printf("== Figure 4: CPU time of join/leave vs group size (%d-bit modexp = %s; paper: 2.5 ms Pentium / 12 ms SPARC at 512 bits) ==\n", bits, fmtDur(unit))
	w := newTab()
	fmt.Fprintln(w, "protocol\tn\tjoin-cpu\tleave-cpu\tjoin-exps\tmodexp-share")
	for _, proto := range []string{"cliques", "ckd"} {
		for _, n := range sizes(nmax, step) {
			c, err := bench.MeasureCPU(proto, n, batch, group)
			if err != nil {
				return fmt.Errorf("figure4 %s n=%d: %w", proto, n, err)
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%d\t%.0f%%\n",
				proto, n, fmtDur(c.Join), fmtDur(c.Leave), c.JoinExps, c.JoinExpShare*100)
			w.Flush()
		}
	}
	fmt.Println()
	return nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
