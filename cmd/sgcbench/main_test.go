package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/analyze"
)

// TestBenchTables smoke-tests the cheap experiments end to end (the
// figures are excluded: they run timed measurement batches).
func TestBenchTables(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test in -short mode")
	}
	for _, exp := range []string{"table2", "table3", "table4"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 6, 3, 1, 512, 1, 0, "both", "", "", ""); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

// TestBenchChaosMode smoke-tests the chaos experiment: a short schedule
// under one protocol must replay, pass all invariants, and write the
// observability report with per-class rekey-latency histograms.
func TestBenchChaosMode(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_obs.json")
	if err := run("chaos", 0, 0, 0, 0, 2, 12, "cliques", out, "", ""); err != nil {
		t.Fatalf("chaos: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("observability report not written: %v", err)
	}
	var rep obsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	po, ok := rep.Protocols["cliques"]
	if !ok {
		t.Fatalf("report has no cliques entry: %s", data)
	}
	if h, ok := po.RekeyLatency["all"]; !ok || h.Count == 0 {
		t.Errorf("aggregate rekey-latency histogram missing or empty: %v", po.RekeyLatency)
	}
	classes := 0
	for class := range po.RekeyLatency {
		if class != "all" {
			classes++
		}
	}
	if classes == 0 {
		t.Errorf("no per-class rekey-latency histograms: %v", po.RekeyLatency)
	}
	if po.FlushRound.Count == 0 {
		t.Error("flush-round histogram is empty")
	}
	// The report must attribute exponentiations per operation label and
	// the cipher Seal/Open throughput to this protocol run.
	if len(po.DHExp) == 0 {
		t.Error("dh_exp label counters missing from the observability report")
	}
	if po.Crypt["crypt_seal_msgs"] == 0 || po.Crypt["crypt_open_msgs"] == 0 {
		t.Errorf("crypt throughput counters missing or zero: %v", po.Crypt)
	}
}

// TestBenchUnknownExperiment checks the error paths: an unknown experiment
// name and an unknown chaos protocol must be rejected.
func TestBenchUnknownExperiment(t *testing.T) {
	if err := run("tableX", 0, 0, 0, 0, 1, 0, "both", "", "", ""); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment error = %v", err)
	}
	if err := run("chaos", 0, 0, 0, 0, 1, 12, "telepathy", "", "", ""); err == nil || !strings.Contains(err.Error(), "unknown chaos protocol") {
		t.Errorf("unknown chaos protocol error = %v", err)
	}
	if err := run("sweep", 0, 0, 1, 0, 1, 0, "both", "", "1..0", ""); err == nil {
		t.Error("bad size spec accepted")
	}
	if err := run("sweep", 0, 0, 1, 0, 1, 0, "telepathy", "", "2..3", ""); err == nil || !strings.Contains(err.Error(), "unknown sweep protocol") {
		t.Errorf("unknown sweep protocol error = %v", err)
	}
}

// TestBenchSweepMode smoke-tests the sizes sweep end to end: the written
// BENCH_rekey.json must carry per-class/per-size phase summaries and the
// deterministic exponentiation rows for the requested protocol.
func TestBenchSweepMode(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_rekey.json")
	if err := run("sweep", 0, 0, 1, 0, 1, 0, "ckd", "", "2..3", out); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("sweep file not written: %v", err)
	}
	var b analyze.RekeyBench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("sweep file is not JSON: %v", err)
	}
	pb := b.Protocols["ckd"]
	if pb == nil {
		t.Fatalf("sweep file has no ckd entry: %s", data)
	}
	joinSizes := make(map[int]bool)
	for _, s := range pb.Phases {
		if s.Class == "join" {
			joinSizes[s.Size] = true
		}
	}
	if !joinSizes[2] || !joinSizes[3] {
		t.Errorf("sweep phases missing join sizes 2 and 3: %+v", pb.Phases)
	}
	if len(pb.Exps) != 2 {
		t.Errorf("sweep exp rows = %+v, want 2", pb.Exps)
	}
}
