package main

import (
	"strings"
	"testing"
)

// TestBenchTables smoke-tests the cheap experiments end to end (the
// figures are excluded: they run timed measurement batches).
func TestBenchTables(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test in -short mode")
	}
	for _, exp := range []string{"table2", "table3", "table4"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 6, 3, 1, 512, 1, 0, "both"); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

// TestBenchChaosMode smoke-tests the chaos experiment: a short schedule
// under one protocol must replay and pass all invariants.
func TestBenchChaosMode(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test in -short mode")
	}
	if err := run("chaos", 0, 0, 0, 0, 2, 12, "cliques"); err != nil {
		t.Fatalf("chaos: %v", err)
	}
}

// TestBenchUnknownExperiment checks the error paths: an unknown experiment
// name and an unknown chaos protocol must be rejected.
func TestBenchUnknownExperiment(t *testing.T) {
	if err := run("tableX", 0, 0, 0, 0, 1, 0, "both"); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment error = %v", err)
	}
	if err := run("chaos", 0, 0, 0, 0, 1, 12, "telepathy"); err == nil || !strings.Contains(err.Error(), "unknown chaos protocol") {
		t.Errorf("unknown chaos protocol error = %v", err)
	}
}
