// Command sgcchat is an interactive secure group chat: several chat users
// run inside one process on a local daemon cluster, and stdin lines are
// multicast encrypted to the group. It demonstrates the library driving a
// real interactive application and doubles as a manual test tool.
//
// Usage:
//
//	sgcchat -users alice,bob -group lobby
//
// Commands at the prompt:
//
//	/as <user>       switch the sending user
//	/join <user>     add a user to the group
//	/leave <user>    remove a user from the group
//	/refresh         rotate the group key
//	/state           print membership and epoch
//	/quit            exit
//
// Anything else is sent to the group as an encrypted message.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/securespread"
)

func main() {
	users := flag.String("users", "alice,bob", "comma-separated initial users")
	group := flag.String("group", "lobby", "group name")
	proto := flag.String("proto", securespread.ProtoCliques, "key agreement protocol (cliques|ckd)")
	suite := flag.String("suite", securespread.SuiteBlowfish, "cipher suite")
	flag.Parse()

	if err := run(os.Stdin, os.Stdout, strings.Split(*users, ","), *group, *proto, *suite); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type chat struct {
	out      io.Writer
	cluster  *securespread.Cluster
	group    string
	proto    string
	suite    string
	sessions map[string]*securespread.Session
	next     int
}

// run drives the chat loop, reading commands from in and writing every
// prompt and event to out (separated from main for the smoke test).
func run(in io.Reader, out io.Writer, users []string, group, proto, suite string) error {
	cluster, err := securespread.NewLocalCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	c := &chat{
		out:      out,
		cluster:  cluster,
		group:    group,
		proto:    proto,
		suite:    suite,
		sessions: make(map[string]*securespread.Session),
	}
	for _, u := range users {
		if err := c.addUser(strings.TrimSpace(u)); err != nil {
			return err
		}
	}
	if len(c.sessions) == 0 {
		return fmt.Errorf("no users")
	}
	current := strings.TrimSpace(users[0])
	fmt.Fprintf(out, "secure chat in %q (%s, %s). /help for commands.\n", group, proto, suite)

	sc := bufio.NewScanner(in)
	fmt.Fprintf(out, "%s> ", current)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "/quit":
			return nil
		case line == "/help":
			fmt.Fprintln(out, "/as <user> | /join <user> | /leave <user> | /refresh | /state | /quit")
		case strings.HasPrefix(line, "/as "):
			u := strings.TrimSpace(strings.TrimPrefix(line, "/as "))
			if _, ok := c.sessions[u]; !ok {
				fmt.Fprintf(out, "no such user %q\n", u)
			} else {
				current = u
			}
		case strings.HasPrefix(line, "/join "):
			u := strings.TrimSpace(strings.TrimPrefix(line, "/join "))
			if err := c.addUser(u); err != nil {
				fmt.Fprintln(out, "join:", err)
			}
		case strings.HasPrefix(line, "/leave "):
			u := strings.TrimSpace(strings.TrimPrefix(line, "/leave "))
			s, ok := c.sessions[u]
			if !ok {
				fmt.Fprintf(out, "no such user %q\n", u)
				break
			}
			if err := s.Leave(c.group); err != nil {
				fmt.Fprintln(out, "leave:", err)
				break
			}
			delete(c.sessions, u)
			if current == u {
				for name := range c.sessions {
					current = name
					break
				}
			}
		case line == "/refresh":
			if err := c.sessions[current].KeyRefresh(c.group); err != nil {
				fmt.Fprintln(out, "refresh:", err)
			}
		case line == "/state":
			members, epoch, secured := c.sessions[current].GroupState(c.group)
			fmt.Fprintf(out, "members=%v epoch=%d secured=%v\n", members, epoch, secured)
		default:
			if err := c.sessions[current].Multicast(c.group, []byte(line)); err != nil {
				fmt.Fprintln(out, "send:", err)
			}
		}
		// Drain a short window of events so chat output interleaves
		// naturally with the prompt.
		c.drain(200 * time.Millisecond)
		fmt.Fprintf(out, "%s> ", current)
	}
	return sc.Err()
}

// addUser connects a new session on a round-robin daemon and joins it to
// the group, waiting until it is secured.
func (c *chat) addUser(name string) error {
	if name == "" {
		return fmt.Errorf("empty user name")
	}
	if _, dup := c.sessions[name]; dup {
		return fmt.Errorf("user %q already present", name)
	}
	d := c.cluster.Daemons[c.next%len(c.cluster.Daemons)]
	c.next++
	s, err := securespread.Connect(d, name)
	if err != nil {
		return err
	}
	if err := s.JoinWith(c.group, c.proto, c.suite); err != nil {
		return err
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := s.Receive(time.Until(deadline))
		if !ok {
			break
		}
		if v, isView := ev.(securespread.SecureView); isView {
			fmt.Fprintf(c.out, "* %s joined: members=%v epoch=%d\n", name, v.Members, v.Epoch)
			c.sessions[name] = s
			return nil
		}
	}
	return fmt.Errorf("user %q never secured", name)
}

// drain prints pending events from every session for a short interval.
func (c *chat) drain(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		idle := true
		for name, s := range c.sessions {
			ev, ok := s.Receive(5 * time.Millisecond)
			if !ok || ev == nil {
				continue
			}
			idle = false
			switch e := ev.(type) {
			case securespread.Message:
				fmt.Fprintf(c.out, "[%s sees] %s: %s\n", name, e.Sender, e.Data)
			case securespread.SecureView:
				fmt.Fprintf(c.out, "[%s sees] view: members=%v epoch=%d\n", name, e.Members, e.Epoch)
			case securespread.SelfLeave:
				fmt.Fprintf(c.out, "[%s sees] left group\n", name)
			case securespread.Warning:
				fmt.Fprintf(c.out, "[%s sees] warning: %v\n", name, e.Err)
			}
		}
		if idle {
			return
		}
	}
}
