package main

import (
	"strings"
	"testing"

	"repro/securespread"
)

// TestChatSmoke drives the full chat loop through a scripted session: two
// users secure a group, a third joins at the prompt, a message is
// multicast, state is printed, and a user leaves. The blank lines give the
// event drain extra windows so message delivery is not timing-sensitive.
func TestChatSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chat smoke test in -short mode")
	}
	script := strings.Join([]string{
		"/state",
		"/join carol",
		"hello group",
		"", "", "", "", "", "", "", "", "", "",
		"/state",
		"/leave carol",
		"/quit",
	}, "\n") + "\n"

	var out strings.Builder
	if err := run(strings.NewReader(script), &out, []string{"alice", "bob"}, "lobby", "cliques", securespread.SuiteBlowfish); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		`secure chat in "lobby"`,
		"* alice joined",
		"* bob joined",
		"* carol joined",
		"members=",
		"secured=true",
		"[bob sees] alice#d00: hello group",
		"[carol sees] alice#d00: hello group",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\noutput:\n%s", want, got)
		}
	}
}

// TestChatUnknownUser covers the error paths that do not need a secured
// group: switching to and leaving a user that does not exist.
func TestChatUnknownUser(t *testing.T) {
	if testing.Short() {
		t.Skip("chat smoke test in -short mode")
	}
	script := "/as nobody\n/leave nobody\n/quit\n"
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, []string{"solo"}, "g", "cliques", securespread.SuiteBlowfish); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := strings.Count(out.String(), `no such user "nobody"`); n != 2 {
		t.Errorf("expected 2 unknown-user errors, got %d\noutput:\n%s", n, out.String())
	}
}
